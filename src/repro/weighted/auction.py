"""ε-scaling auction solver for weighted bipartite matching.

Bertsekas' auction algorithm shares the structure of the paper's speculative
push-relabel kernels: every unassigned *person* concurrently scans its
adjacency for the best and second-best object at current prices, submits a
bid, and every object accepts its highest bid — a pair of data-parallel
kernels with per-thread work equal to the adjacency scanned, exactly the
execution shape the :mod:`repro.gpusim` cost model charges.  Passing a
:class:`~repro.gpusim.device.VirtualGPU` runs the same Jacobi bidding rounds
as modelled kernel launches (``auction_bid`` / ``auction_assign``) and
reports modelled seconds.

Deficient (non-square / infeasible) instances are handled with the classic
**square augmentation**: persons are the real rows plus one artificial
person per column, objects are the real columns plus one artificial object
per row.  Every real edge ``(i, j)`` contributes the person→object edge
``i → j`` (shifted weight) and the mirror ``a_j → o_i`` (weight 0); the
diagonal edges ``i → o_i`` and ``a_j → j`` carry a penalty ``−P`` chosen so
that one extra real matched pair always beats any redistribution of weight
(``2P > K·spread``).  A perfect augmented assignment therefore always
exists, and the optimal one restricts to a maximum-weight
maximum-cardinality matching of the real graph.

ε-scaling runs the bidding to completion for a geometrically decreasing ε,
keeping prices between rounds.  The final ε is small enough that integer
effective weights make the result *exactly* optimal (``N·ε < 1``); the
returned :class:`~repro.weighted.duals.AuctionCertificate` carries the ε-CS
duals, from which :func:`repro.weighted.verify.certify_optimal` computes an
explicit a-posteriori optimality gap bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult
from repro.weighted.duals import (
    AuctionCertificate,
    _check_objective,
    effective_weights,
    matching_total_weight,
)

__all__ = [
    "AuctionConfig",
    "assigned_edge_indices",
    "build_augmented_problem",
    "weighted_auction_matching",
]


@dataclass(frozen=True)
class AuctionConfig:
    """Tuning knobs of the ε-scaling auction solver.

    Attributes
    ----------
    objective:
        ``"max"`` (default) maximises total weight, ``"min"`` minimises it —
        both among *maximum-cardinality* matchings.
    scaling_factor:
        Geometric ε divisor between scaling rounds (> 1).
    final_epsilon:
        Override for the last round's ε.  Default ``0.45 / N`` (``N`` =
        augmented problem size), which makes integer effective weights
        exactly optimal.
    max_bid_rounds:
        Safety valve on total Jacobi bidding rounds across all ε levels; a
        genuine instance never comes close.
    """

    objective: str = "max"
    scaling_factor: float = 5.0
    final_epsilon: float | None = None
    max_bid_rounds: int = 1_000_000

    def __post_init__(self) -> None:
        _check_objective(self.objective)
        if not self.scaling_factor > 1.0:
            raise ValueError("scaling_factor must be > 1")
        if self.final_epsilon is not None and not self.final_epsilon > 0:
            raise ValueError("final_epsilon must be positive")
        if self.max_bid_rounds < 1:
            raise ValueError("max_bid_rounds must be at least 1")


def build_augmented_problem(
    graph: BipartiteGraph, objective: str = "max"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Person-CSR of the square augmented assignment problem.

    Returns ``(ptr, objs, w_aug)``: for augmented person ``p`` (real rows
    ``0..n_rows-1``, then artificial persons ``a_j``), its candidate objects
    are ``objs[ptr[p]:ptr[p+1]]`` (real columns ``0..n_cols-1``, then
    artificial objects ``o_i = n_cols + i``) with weights
    ``w_aug[ptr[p]:ptr[p+1]]``.  Real edges carry ``ŵ − min(ŵ)``, mirror
    edges ``0``, diagonal (penalty) edges ``−P`` with
    ``P = K·spread/2 + 1``.  Deterministic, so the verifier reconstructs the
    identical problem from the graph alone.
    """
    n_rows, n_cols = graph.n_rows, graph.n_cols
    what_row = effective_weights(graph, objective, row_aligned=True)
    w_min = float(what_row.min()) if len(what_row) else 0.0
    spread = (float(what_row.max()) - w_min) if len(what_row) else 0.0
    penalty = min(n_rows, n_cols) * spread / 2.0 + 1.0

    # Real persons: their real edges (row-CSR order) then the diagonal o_i.
    real_objs = np.insert(
        graph.row_ind, graph.row_ptr[1:], n_cols + np.arange(n_rows, dtype=np.int64)
    )
    real_w = np.insert(what_row - w_min, graph.row_ptr[1:], -penalty)
    # Artificial persons a_j: mirrors of j's real edges, then the diagonal j.
    art_objs = np.insert(
        n_cols + graph.col_ind, graph.col_ptr[1:], np.arange(n_cols, dtype=np.int64)
    )
    art_w = np.insert(np.zeros(graph.n_edges), graph.col_ptr[1:], -penalty)

    degrees = np.concatenate([np.diff(graph.row_ptr) + 1, np.diff(graph.col_ptr) + 1])
    ptr = np.zeros(n_rows + n_cols + 1, dtype=np.int64)
    np.cumsum(degrees, out=ptr[1:])
    return ptr, np.concatenate([real_objs, art_objs]), np.concatenate([real_w, art_w])


def _segment_max2(values: np.ndarray, offsets: np.ndarray):
    """Per-segment (max, argmax-position, second-max) for concatenated segments.

    ``offsets`` delimits the segments (length ``S + 1``); every segment is
    non-empty.  The argmax is the first position attaining the maximum; the
    second max is over the remaining entries (``-inf`` for singletons).
    """
    starts = offsets[:-1]
    best = np.maximum.reduceat(values, starts)
    seg_id = np.repeat(np.arange(len(starts)), np.diff(offsets))
    is_best = values == best[seg_id]
    total = len(values)
    candidates = np.where(is_best, np.arange(total), total)
    first = np.minimum.reduceat(candidates, starts)
    masked = values.copy()
    masked[first] = -np.inf
    second = np.maximum.reduceat(masked, starts)
    return best, first, second


def weighted_auction_matching(
    graph: BipartiteGraph,
    config: AuctionConfig | None = None,
    device=None,
) -> MatchingResult:
    """Optimal-weight maximum-cardinality matching via ε-scaling auction.

    Parameters
    ----------
    graph:
        The bipartite graph.  Weightless graphs are solved with unit weights
        (plain maximum-cardinality matching).
    config:
        An :class:`AuctionConfig`; defaults to weight maximisation.
    device:
        Optional :class:`~repro.gpusim.device.VirtualGPU`.  When given, each
        Jacobi bidding round is charged to the device's cost ledger as an
        ``auction_bid`` kernel (per-thread work = adjacency scanned per
        bidding person) plus an ``auction_assign`` kernel (one thread per
        bid), and the result carries the modelled time.

    Returns
    -------
    MatchingResult
        ``counters["total_weight"]`` holds the matching's total weight under
        the original weights; ``result.duals`` carries the
        :class:`~repro.weighted.duals.AuctionCertificate`.
    """
    t0 = time.perf_counter()
    cfg = config or AuctionConfig()
    n_rows, n_cols = graph.n_rows, graph.n_cols
    n = n_rows + n_cols
    counters: dict = {"bid_rounds": 0, "bids": 0, "edges_scanned": 0, "scaling_rounds": 0}

    if n == 0 or min(n_rows, n_cols) == 0:
        # One side is empty: the all-diagonal augmented assignment is optimal.
        ptr, objs, w_aug = build_augmented_problem(graph, cfg.objective)
        diag = ptr[1:] - 1
        matching = Matching.empty(graph)
        duals = AuctionCertificate(
            objective=cfg.objective,
            epsilon=0.0,
            person_profits=w_aug[diag] if n else np.empty(0),
            object_prices=np.zeros(n),
            person_match=objs[diag] if n else np.empty(0, np.int64),
        )
        counters.update(total_weight=0.0, objective=cfg.objective)
        return MatchingResult.create(
            "W-AUC", matching, counters=counters, wall_time=time.perf_counter() - t0, duals=duals
        )

    ptr, objs, w_aug = build_augmented_problem(graph, cfg.objective)
    degrees = np.diff(ptr)
    spread = float(w_aug.max() - w_aug.min())
    final_eps = cfg.final_epsilon if cfg.final_epsilon is not None else 0.45 / n
    epsilon = max(final_eps, spread / 8.0)

    prices = np.zeros(n, dtype=np.float64)
    person_match = np.full(n, -1, dtype=np.int64)
    object_match = np.full(n, -1, dtype=np.int64)

    # Pre-pair isolated persons/objects (zero real degree: the diagonal is
    # their only edge, on both sides) once; they never rebid.
    isolated_rows = np.flatnonzero(np.diff(graph.row_ptr) == 0)
    person_match[isolated_rows] = n_cols + isolated_rows
    object_match[n_cols + isolated_rows] = isolated_rows
    isolated_cols = np.flatnonzero(np.diff(graph.col_ptr) == 0)
    person_match[n_rows + isolated_cols] = isolated_cols
    object_match[isolated_cols] = n_rows + isolated_cols
    pinned = person_match >= 0
    if device is not None:
        # Under shadow-access mode these become recording views (same buffer).
        prices = device.shadow_wrap(prices, "prices")
        person_match = device.shadow_wrap(person_match, "person_match")
        object_match = device.shadow_wrap(object_match, "object_match")

    while True:
        counters["scaling_rounds"] += 1
        # Reset the assignment (keep prices) for this ε level.
        person_match[~pinned] = -1
        object_match.fill(-1)
        if device is not None:
            # The ε-reset is sequential host code between two launches; the
            # sync separates the fill from the re-seeding write below so the
            # sanitizer does not mistake them for one conflicting wave.
            device.shadow_sync()
        object_match[person_match[pinned]] = np.flatnonzero(pinned)
        while True:
            free = np.flatnonzero(person_match < 0)
            if len(free) == 0:
                break
            counters["bid_rounds"] += 1
            if counters["bid_rounds"] > cfg.max_bid_rounds:
                raise RuntimeError(
                    f"auction exceeded max_bid_rounds={cfg.max_bid_rounds}; "
                    "the instance or configuration is pathological"
                )
            # Bid kernel: every free person scans its candidates for the two
            # best values at current prices.
            seg_lens = degrees[free]
            offsets = np.zeros(len(free) + 1, dtype=np.int64)
            np.cumsum(seg_lens, out=offsets[1:])
            flat = (
                np.arange(int(offsets[-1]), dtype=np.int64)
                - np.repeat(offsets[:-1], seg_lens)
                + np.repeat(ptr[free], seg_lens)
            )
            values = w_aug[flat] - prices[objs[flat]]
            best, first_pos, second = _segment_max2(values, offsets)
            best_obj = objs[flat[first_pos]]
            bids = prices[best_obj] + best - second + epsilon
            counters["bids"] += len(free)
            counters["edges_scanned"] += int(offsets[-1])
            if device is not None:
                device.charge_kernel("auction_bid", seg_lens.astype(np.float64))
            # Assign kernel: each bid-receiving object takes its highest bid
            # (ties broken towards the lowest person id).
            order = np.lexsort((free, -bids, best_obj))
            obj_sorted = best_obj[order]
            lead = np.empty(len(order), dtype=bool)
            lead[0] = True
            lead[1:] = obj_sorted[1:] != obj_sorted[:-1]
            winners_idx = order[lead]
            win_obj = best_obj[winners_idx]
            win_person = free[winners_idx]
            # Unseat previous holders, then record the new assignments.
            prev = object_match[win_obj]
            person_match[prev[prev >= 0]] = -1
            prices[win_obj] = bids[winners_idx]
            object_match[win_obj] = win_person
            person_match[win_person] = win_obj
            # Charge-after-access: the assign launch covers the writes above
            # (same charge value and order as before — only the call site
            # moved past the accesses it accounts for).
            if device is not None:
                device.charge_kernel("auction_assign", np.ones(len(free)))
        if epsilon <= final_eps:
            break
        epsilon = max(final_eps, epsilon / cfg.scaling_factor)

    duals = AuctionCertificate(
        objective=cfg.objective,
        epsilon=float(final_eps),
        person_profits=w_aug[assigned_edge_indices(ptr, objs, person_match)]
        - prices[np.asarray(person_match)],
        object_prices=np.asarray(prices),
        person_match=np.asarray(person_match),
    )
    row_match = np.where(person_match[:n_rows] < n_cols, person_match[:n_rows], UNMATCHED)
    col_match = np.full(n_cols, UNMATCHED, dtype=np.int64)
    matched = np.flatnonzero(row_match >= 0)
    col_match[row_match[matched]] = matched
    matching = Matching(row_match, col_match)
    counters["total_weight"] = matching_total_weight(graph, matching)
    counters["objective"] = cfg.objective
    return MatchingResult.create(
        "W-AUC",
        matching,
        counters=counters,
        modeled_time=device.elapsed_seconds if device is not None else None,
        wall_time=time.perf_counter() - t0,
        duals=duals,
    )


def assigned_edge_indices(
    ptr: np.ndarray, objs: np.ndarray, person_match: np.ndarray
) -> np.ndarray:
    """Flat index into the augmented edge arrays of each person's assigned edge.

    One vectorised first-hit-per-segment scan (every augmented person has at
    least its diagonal edge, so segments are never empty).  Raises
    ``ValueError`` if some person is assigned to a non-adjacent object —
    :func:`repro.weighted.verify.certify_optimal` turns that into an
    unusable-certificate report.
    """
    n = len(person_match)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    seg_person = np.repeat(np.arange(n, dtype=np.int64), np.diff(ptr))
    total = len(objs)
    candidates = np.where(
        objs == person_match[seg_person], np.arange(total, dtype=np.int64), total
    )
    first = np.minimum.reduceat(candidates, ptr[:-1])
    misses = np.flatnonzero(first >= total)
    if len(misses):
        p = int(misses[0])
        raise ValueError(
            f"augmented person {p} assigned to non-adjacent object {int(person_match[p])}"
        )
    return first
