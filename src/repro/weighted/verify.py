"""Optimality certification for weighted matchings via complementary slackness.

:func:`certify_optimal` checks a matching together with the dual variables
returned by a weighted solver and produces a :class:`CertificateReport`:

* structural validity and **maximum cardinality** are checked combinatorially
  (reusing :mod:`repro.seq.verify` — no augmenting path exists), exactly;
* the complementary-slackness conditions of the certificate (see
  :mod:`repro.weighted.duals` for both forms) are *measured*, and the
  measured violations are folded into an explicit ``gap_bound`` with the
  guarantee::

      ŵ(M') ≤ ŵ(M) + gap_bound     for every maximum-cardinality M',

  where ``ŵ`` are the effective weights (negated for ``objective="min"``).
  Exact duals give ``gap_bound ≈ 0`` (float round-off); the auction's ε-CS
  duals give ``gap_bound = O(N·ε)``.  For integer effective weights a
  ``gap_bound < 1`` therefore *proves* the matching optimal.

The report never raises on a bad certificate — it records what failed, so
tests can assert ``report.ok(tol)`` and print the offending measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.matching import Matching
from repro.seq.verify import is_maximum_matching, is_valid_matching
from repro.weighted.auction import assigned_edge_indices, build_augmented_problem
from repro.weighted.duals import (
    AuctionCertificate,
    DualCertificate,
    effective_weights,
    matching_total_weight,
)

__all__ = ["CertificateReport", "certify_optimal", "matching_total_weight"]


@dataclass(frozen=True)
class CertificateReport:
    """Outcome of checking one matching against one dual certificate.

    Attributes
    ----------
    valid:
        The matching is structurally consistent and uses only graph edges.
    maximum:
        The matching has maximum cardinality (no augmenting path).
    total_weight:
        The matching's total weight under the *original* weights.
    gap_bound:
        Proven upper bound on ``ŵ(M') − ŵ(M)`` over maximum-cardinality
        matchings ``M'`` (effective weights); ``inf`` when the certificate
        is structurally unusable.
    details:
        The individual measured violations that compose ``gap_bound``.
    """

    valid: bool
    maximum: bool
    total_weight: float
    gap_bound: float
    details: dict = field(default_factory=dict)

    def ok(self, tol: float = 1e-6) -> bool:
        """Whether the matching is certified optimal within ``tol``."""
        return self.valid and self.maximum and self.gap_bound <= tol


def certify_optimal(
    graph: BipartiteGraph,
    matching: Matching,
    duals: DualCertificate | AuctionCertificate,
) -> CertificateReport:
    """Check a weighted matching against its solver's dual certificate.

    Parameters
    ----------
    graph:
        The (possibly weightless) graph that was solved.
    matching:
        The matching to certify.
    duals:
        A reduced-form :class:`~repro.weighted.duals.DualCertificate` (SAP)
        or an augmented-form
        :class:`~repro.weighted.duals.AuctionCertificate` (auction); the
        form is dispatched on the type.

    Returns
    -------
    CertificateReport

    Raises
    ------
    TypeError
        For an object that is neither certificate type.
    """
    valid = is_valid_matching(graph, matching)
    maximum = valid and is_maximum_matching(graph, matching)
    total = matching_total_weight(graph, matching) if valid else float("nan")
    if isinstance(duals, DualCertificate):
        gap, details = _reduced_gap(graph, matching, duals)
    elif isinstance(duals, AuctionCertificate):
        gap, details = _augmented_gap(graph, matching, duals)
    else:
        raise TypeError(
            f"expected a DualCertificate or AuctionCertificate, got {type(duals).__name__}"
        )
    return CertificateReport(
        valid=valid, maximum=maximum, total_weight=total, gap_bound=gap, details=details
    )


def _matched_effective_weights(
    graph: BipartiteGraph, matching: Matching, objective: str
) -> tuple[np.ndarray, np.ndarray | None]:
    """(matched row indices, their matched-edge effective weights).

    The weights come back aligned with the (sorted) matched row indices, via
    one vectorised pass over the column-CSR edge list.  ``None`` weights
    signal that some matched pair is not an edge — the caller reports an
    unusable certificate (validity itself is checked elsewhere).
    """
    matched = np.flatnonzero(matching.row_match >= 0)
    what = effective_weights(graph, objective)
    mask = matching.row_match[graph.col_ind] == graph.edge_columns()
    rows = graph.col_ind[mask]
    if len(rows) != len(matched):
        return matched, None
    return matched, what[mask][np.argsort(rows)]


def _reduced_gap(
    graph: BipartiteGraph, matching: Matching, duals: DualCertificate
) -> tuple[float, dict]:
    """Measured-violation gap bound for the reduced-form certificate.

    Derivation (``k`` = cardinality, ``π⁺/π⁻`` positive/negative parts):
    summing feasibility over any maximum-cardinality ``M'`` and dropping
    uncovered vertices via the sign condition gives
    ``ŵ(M') ≤ kλ + Σπ⁺ + Σρ⁺ + k·feas``; subtracting the tightness identity
    for ``M`` leaves exactly the terms below.
    """
    pi, rho, lam = duals.row_duals, duals.col_duals, duals.lam
    if len(pi) != graph.n_rows or len(rho) != graph.n_cols:
        return float("inf"), {"error": "dual arrays do not match the graph shape"}
    what = effective_weights(graph, duals.objective)
    slack = what - pi[graph.col_ind] - rho[graph.edge_columns()] - lam
    feas = float(slack.max(initial=0.0))  # > 0 ⇒ a violated feasibility constraint

    matched_rows, w_matched = _matched_effective_weights(graph, matching, duals.objective)
    if w_matched is None:
        return float("inf"), {"error": "a matched pair is not an edge of the graph"}
    matched_cols = matching.row_match[matched_rows]
    k = len(matched_rows)
    tight = float(np.sum(pi[matched_rows] + rho[matched_cols] + lam - w_matched))
    free_row_pos = float(np.sum(np.maximum(np.delete(pi, matched_rows), 0.0)))
    free_col_pos = float(np.sum(np.maximum(np.delete(rho, matched_cols), 0.0)))
    matched_neg = float(
        np.sum(np.maximum(-pi[matched_rows], 0.0)) + np.sum(np.maximum(-rho[matched_cols], 0.0))
    )
    details = {
        "form": "reduced",
        "feasibility_violation": max(feas, 0.0),
        "tightness_excess": tight,
        "free_vertex_duals": free_row_pos + free_col_pos,
        "matched_negative_duals": matched_neg,
    }
    gap = k * max(feas, 0.0) + tight + free_row_pos + free_col_pos + matched_neg
    return max(gap, 0.0), details


def _augmented_gap(
    graph: BipartiteGraph, matching: Matching, duals: AuctionCertificate
) -> tuple[float, dict]:
    """Measured-violation gap bound for the augmented-form certificate.

    The augmented problem is reconstructed deterministically from the graph;
    every perfect augmented assignment covers every person and object, so
    the bound needs no free-vertex or sign conditions: for any perfect
    ``X'``, ``w(X') ≤ Σπ + Σp + N·feas`` while the assigned-pair identity
    gives ``w(X) = Σπ + Σp − tight``.  Restricting augmented assignments to
    real matchings of equal cardinality turns this into the same effective-
    weight gap (the augmentation's shift and penalties cancel).
    """
    n_rows, n_cols = graph.n_rows, graph.n_cols
    n = n_rows + n_cols
    pi, prices, pmatch = duals.person_profits, duals.object_prices, duals.person_match
    if len(pi) != n or len(prices) != n or len(pmatch) != n:
        return float("inf"), {"error": "dual arrays do not match the augmented size"}
    if n == 0:
        return 0.0, {"form": "augmented"}
    # The assignment must be perfect and agree with the real matching.
    if sorted(pmatch.tolist()) != list(range(n)):
        return float("inf"), {"error": "augmented assignment is not a permutation"}
    extracted = np.where(pmatch[:n_rows] < n_cols, pmatch[:n_rows], -1)
    if not np.array_equal(extracted, np.where(matching.row_match >= 0, matching.row_match, -1)):
        return float("inf"), {"error": "augmented assignment does not extend the matching"}

    ptr, objs, w_aug = build_augmented_problem(graph, duals.objective)
    seg_persons = np.repeat(np.arange(n, dtype=np.int64), np.diff(ptr))
    slack = w_aug - pi[seg_persons] - prices[objs]
    feas = float(max(slack.max(initial=0.0) - duals.epsilon, 0.0))

    try:
        assigned = assigned_edge_indices(ptr, objs, pmatch)
    except ValueError as exc:
        return float("inf"), {"error": str(exc)}
    tight = float(np.sum(pi + prices[pmatch] - w_aug[assigned]))
    details = {
        "form": "augmented",
        "epsilon": duals.epsilon,
        "feasibility_violation_beyond_epsilon": feas,
        "tightness_excess": tight,
    }
    gap = n * (feas + duals.epsilon) + tight
    return max(gap, 0.0), details
