"""Weighted bipartite matching: maximum-weight / minimum-cost assignment.

The subsystem solves, on the same dual-CSR graphs as the cardinality
algorithms, the **optimal-weight maximum-cardinality matching** problem:
among all maximum-cardinality matchings, find one of maximum (or, with
``objective="min"``, minimum) total edge weight.  Two solvers are
registered in :data:`repro.core.api.SPECS` and therefore flow through
``resolve_algorithm()`` / ``ExecutionPlan``, the execution engine, the
batched service and the CLI unchanged:

* ``weighted-sap`` — sequential shortest augmenting paths with dual
  variables (:mod:`repro.weighted.sap`), the exact reference solver;
* ``weighted-auction`` — ε-scaling auction (:mod:`repro.weighted.auction`)
  whose Jacobi bidding rounds map onto the virtual GPU's kernel cost model.

Both return LP dual variables on the result (``result.duals``), and
:func:`repro.weighted.verify.certify_optimal` certifies optimality from
them via complementary slackness.
"""

from repro.weighted.auction import AuctionConfig, weighted_auction_matching
from repro.weighted.duals import AuctionCertificate, DualCertificate, effective_weights
from repro.weighted.sap import SAPConfig, weighted_sap_matching
from repro.weighted.verify import CertificateReport, certify_optimal, matching_total_weight

__all__ = [
    "AuctionCertificate",
    "AuctionConfig",
    "CertificateReport",
    "DualCertificate",
    "SAPConfig",
    "certify_optimal",
    "effective_weights",
    "matching_total_weight",
    "weighted_auction_matching",
    "weighted_sap_matching",
]
