"""repro — reproduction of the ICPP 2013 GPU push-relabel bipartite matching paper.

The package implements, in pure Python/NumPy on a virtual SIMT device:

* the paper's contribution: the lock- and atomic-free GPU push-relabel
  maximum cardinality bipartite matching algorithm **G-PR** with adaptive
  global relabeling and active-list shrinking (:mod:`repro.core`),
* every baseline it is compared against: sequential PR, HK, HKDW,
  Pothen–Fan (:mod:`repro.seq`), the multicore P-DBFS
  (:mod:`repro.multicore`) and the GPU G-HKDW (:mod:`repro.core.ghkdw`),
* the substrates those need: a CSR bipartite graph (:mod:`repro.graph`),
  synthetic workload generators mirroring the paper's 28-instance suite
  (:mod:`repro.generators`) and a virtual GPU with a calibrated cost model
  (:mod:`repro.gpusim`),
* the benchmark harness regenerating every figure and table of the paper
  (:mod:`repro.bench`),
* and the workload extensions: an execution engine with pluggable backends
  (:mod:`repro.engine`), a batched caching service (:mod:`repro.service`),
  incremental matching under streaming updates (:mod:`repro.dynamic`) and
  weighted assignment with dual optimality certificates
  (:mod:`repro.weighted`).

Quickstart
----------
>>> from repro import max_bipartite_matching
>>> from repro.generators import uniform_random_bipartite
>>> graph = uniform_random_bipartite(1000, 1000, avg_degree=5, seed=1)
>>> result = max_bipartite_matching(graph, algorithm="g-pr")
>>> result.cardinality > 0
True
"""

from repro.graph import BipartiteGraph
from repro.matching import Matching, MatchingResult

__version__ = "1.0.0"

__all__ = [
    "BipartiteGraph",
    "Matching",
    "MatchingResult",
    "max_bipartite_matching",
    "__version__",
]


def max_bipartite_matching(graph, algorithm: str = "g-pr", **kwargs):
    """Compute a maximum cardinality matching of ``graph``.

    Thin convenience wrapper around :func:`repro.core.api.max_bipartite_matching`
    (imported lazily so the substrate packages stay importable on their own).
    See that function for the list of algorithms and options.
    """
    from repro.core.api import max_bipartite_matching as _impl

    return _impl(graph, algorithm=algorithm, **kwargs)
