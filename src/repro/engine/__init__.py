"""Execution engine: one job model, many interchangeable backends.

The paper maps the same matching computation onto heterogeneous execution
substrates (sequential CPU, multicore P-DBFS, GPU G-PR); this package gives
the library's execution surface the same shape:

* :class:`~repro.engine.job.MatchingJob` — one unit of work (graph +
  algorithm + kwargs + optional warm-start), hashable and picklable;
* :class:`~repro.engine.engine.Engine` — ``submit() -> JobHandle``,
  ``map()`` and an ``as_completed()`` streaming iterator, with per-job
  deadlines and cancellation;
* :class:`~repro.engine.handles.JobHandle` — a future with typed status
  (``ok`` / ``failed`` / ``cancelled`` / ``timeout``) and captured errors,
  so one raising job never aborts its batch;
* five :class:`~repro.engine.backends.ExecutionBackend` implementations:
  :class:`~repro.engine.backends.InlineBackend` (synchronous),
  :class:`~repro.engine.backends.ThreadBackend` (persistent thread pool),
  :class:`~repro.engine.process.ProcessPoolBackend` (persistent process
  pool shipping resolved plans, true per-job timings),
  :class:`~repro.engine.device.DevicePoolBackend` (multiplexes jobs over a
  pool of :class:`~repro.gpusim.VirtualGPU` instances) and
  :class:`~repro.engine.backends.CompiledBackend` (synchronous, but
  requires the numba-compiled kernel tier and pre-compiles every twin).

All backends produce bit-identical :class:`~repro.matching.MatchingResult`
objects for the same job list.  The batched :mod:`repro.service` is a thin
caching facade over this package.

Quickstart
----------
>>> from repro.engine import Engine, MatchingJob
>>> from repro.generators import uniform_random_bipartite
>>> g = uniform_random_bipartite(200, 200, avg_degree=4, seed=1)
>>> with Engine(backend="thread", max_workers=2) as engine:
...     handles = engine.map([MatchingJob(graph=g, algorithm=a) for a in ("g-pr", "pr")])
...     cards = {h.result().cardinality for h in engine.as_completed(handles)}
>>> len(cards) == 1
True
"""

from repro.engine.backends import (
    CompiledBackend,
    ExecutionBackend,
    InlineBackend,
    ThreadBackend,
)
from repro.engine.device import DevicePoolBackend
from repro.engine.engine import (
    BACKEND_NAMES,
    Engine,
    EngineSaturatedError,
    as_completed,
    create_backend,
)
from repro.engine.execution import execute_job, resolve_job_plan
from repro.engine.faults import FaultInjectingBackend, FaultSchedule, InjectedCrashError
from repro.engine.handles import (
    JobCancelledError,
    JobError,
    JobFailedError,
    JobFailure,
    JobHandle,
    JobStatus,
    JobTimeoutError,
)
from repro.engine.job import INITIAL_CHOICES, MatchingJob
from repro.engine.process import ProcessPoolBackend

__all__ = [
    "BACKEND_NAMES",
    "CompiledBackend",
    "DevicePoolBackend",
    "Engine",
    "EngineSaturatedError",
    "ExecutionBackend",
    "FaultInjectingBackend",
    "FaultSchedule",
    "INITIAL_CHOICES",
    "InjectedCrashError",
    "InlineBackend",
    "JobCancelledError",
    "JobError",
    "JobFailedError",
    "JobFailure",
    "JobHandle",
    "JobStatus",
    "JobTimeoutError",
    "MatchingJob",
    "ProcessPoolBackend",
    "ThreadBackend",
    "as_completed",
    "create_backend",
    "execute_job",
    "resolve_job_plan",
]
