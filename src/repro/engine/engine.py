"""The Engine: per-job futures over a pluggable execution backend.

::

    from repro.engine import Engine, MatchingJob

    with Engine(backend="thread", max_workers=4) as engine:
        handles = engine.map(jobs)
        for handle in engine.as_completed(handles):
            if handle.status is JobStatus.OK:
                use(handle.result())
            else:
                log(handle.failure)

The engine validates each job eagerly (unknown algorithms / kwargs raise at
``submit``), then delegates execution to its backend.  Runtime failures
never propagate out of the backend — each lands on its own handle — so one
raising job cannot abort a streamed batch.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
import weakref
from collections.abc import Iterable, Iterator, Sequence

from repro.core.api import ExecutionPlan
from repro.engine.backends import (
    CompiledBackend,
    ExecutionBackend,
    InlineBackend,
    ThreadBackend,
)
from repro.engine.device import DevicePoolBackend
from repro.engine.execution import check_warm_start, resolve_job_plan
from repro.engine.handles import JobHandle, JobStatus
from repro.engine.job import MatchingJob
from repro.engine.process import ProcessPoolBackend
from repro.matching import Matching, MatchingResult

__all__ = [
    "BACKEND_NAMES",
    "Engine",
    "EngineSaturatedError",
    "as_completed",
    "create_backend",
]

#: Registry names accepted by :func:`create_backend` / ``Engine(backend=...)``.
BACKEND_NAMES = ("inline", "thread", "process", "device", "compiled")


class EngineSaturatedError(RuntimeError):
    """``Engine.submit`` refused a job: ``max_inflight`` jobs are already in flight.

    The backpressure signal for long-lived callers (the matching server maps
    it onto a 429-style shed); batch callers without an admission layer
    should treat it as "try again once something completes".
    """


def create_backend(
    backend: str | ExecutionBackend = "inline",
    *,
    max_workers: int | None = None,
    devices=None,
    device_factory=None,
) -> ExecutionBackend:
    """Build an :class:`ExecutionBackend` from a name (or pass one through).

    ``max_workers`` sizes the thread / process pools; ``devices`` (falling
    back to ``max_workers``) sizes the device pool, whose devices come from
    ``device_factory`` when given.
    """
    if not isinstance(backend, str):
        if isinstance(backend, ExecutionBackend):
            return backend
        raise TypeError(
            f"backend must be a name or an ExecutionBackend, got {type(backend).__name__}"
        )
    key = backend.strip().lower()
    if key == "inline":
        return InlineBackend()
    if key == "compiled":
        return CompiledBackend()
    if key == "thread":
        return ThreadBackend(max_workers=max_workers)
    if key == "process":
        return ProcessPoolBackend(max_workers=max_workers)
    if key == "device":
        if devices is None:
            devices = max_workers if max_workers is not None else 2
        return DevicePoolBackend(devices=devices, device_factory=device_factory)
    raise ValueError(f"unknown backend {backend!r}; available: {', '.join(BACKEND_NAMES)}")


def as_completed(
    handles: Iterable[JobHandle], timeout: float | None = None
) -> Iterator[JobHandle]:
    """Yield handles as their jobs finish, regardless of submission order.

    Like :func:`concurrent.futures.as_completed`, but failure-isolated: a
    ``failed`` / ``timeout`` / ``cancelled`` handle is *yielded*, never
    raised, so a streaming consumer sees every outcome.  ``timeout`` bounds
    the total wait; expiry raises :class:`TimeoutError` with the undelivered
    count.
    """
    pending = list(handles)
    ready: _queue.SimpleQueue = _queue.SimpleQueue()
    for handle in pending:
        handle._add_done_callback(ready.put)
    deadline = None if timeout is None else time.monotonic() + timeout
    for delivered in range(len(pending)):
        wait = None if deadline is None else deadline - time.monotonic()
        if wait is not None and wait <= 0:
            raise TimeoutError(f"{len(pending) - delivered} jobs still pending after {timeout}s")
        try:
            yield ready.get(timeout=wait)
        except _queue.Empty:
            raise TimeoutError(
                f"{len(pending) - delivered} jobs still pending after {timeout}s"
            ) from None


class Engine:
    """Submits :class:`MatchingJob` objects to an execution backend.

    Parameters
    ----------
    backend:
        A backend name (``"inline"`` / ``"thread"`` / ``"process"`` /
        ``"device"`` / ``"compiled"``) or a ready :class:`ExecutionBackend`
        instance.
    max_workers / devices / device_factory:
        Forwarded to :func:`create_backend` when ``backend`` is a name.
    default_timeout:
        Deadline in seconds applied to every job submitted without an
        explicit ``timeout``; ``None`` means no deadline.
    max_inflight:
        Backpressure bound: the maximum number of submitted-but-unfinished
        jobs.  :meth:`submit` raises :class:`EngineSaturatedError` instead of
        queueing past it; ``None`` (default) means unbounded.
    own_backend:
        Whether :meth:`shutdown` (and garbage collection of an abandoned
        engine) tears the backend down.  Default: the engine owns a backend
        it built from a name; a ready-made :class:`ExecutionBackend`
        instance is assumed shared and left running.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "inline",
        *,
        max_workers: int | None = None,
        devices=None,
        device_factory=None,
        default_timeout: float | None = None,
        max_inflight: int | None = None,
        own_backend: bool | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError("max_inflight must be positive (or None for unbounded)")
        self.backend = create_backend(
            backend,
            max_workers=max_workers,
            devices=devices,
            device_factory=device_factory,
        )
        self.default_timeout = default_timeout
        self.max_inflight = max_inflight
        self.jobs_submitted = 0
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._closed = False
        self._owns_backend = isinstance(backend, str) if own_backend is None else own_backend
        # Reclaim pooled workers even if the engine is abandoned without an
        # explicit shutdown() / context exit (backend.shutdown is idempotent).
        self._finalizer = (
            weakref.finalize(self, self.backend.shutdown, False) if self._owns_backend else None
        )

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        job: MatchingJob,
        *,
        plan: ExecutionPlan | None = None,
        timeout: float | None = None,
        initial_matching: Matching | None = None,
    ) -> JobHandle:
        """Validate and schedule one job; returns its :class:`JobHandle`.

        Invalid jobs raise here, before anything executes; *runtime* errors
        are captured on the handle instead, so one raising job can never
        abort a streamed batch.

        Parameters
        ----------
        job:
            The :class:`~repro.engine.job.MatchingJob` to execute.
        plan:
            Pre-built :class:`~repro.core.api.ExecutionPlan`, short-
            circuiting resolution (the batch service and the benchmark
            harness reuse their validation plans this way); takes precedence
            over the job's ``algorithm`` / ``kwargs``.
        timeout:
            Per-job deadline in seconds (default: the engine's
            ``default_timeout``).  A job that has not started by then is
            never run, and a result arriving later is discarded and the job
            marked ``timeout``.
        initial_matching:
            Explicit warm-start matching, overriding the job's *named*
            warm-start.

        Returns
        -------
        JobHandle
            The job's future: ``wait()`` / ``result()`` / ``cancel()``,
            typed ``status``, captured ``failure``, worker and timings.

        Raises
        ------
        ValueError
            Unknown algorithm name.
        TypeError
            Unknown keyword arguments or an inapplicable warm-start.
        RuntimeError
            The engine is shut down (or its shared backend was shut down
            underneath it).
        EngineSaturatedError
            ``max_inflight`` jobs are already in flight; retry after one
            completes.
        """
        if self._closed:
            raise RuntimeError("engine is shut down; create a new Engine to submit jobs")
        if plan is None:
            plan = resolve_job_plan(job)
        elif initial_matching is None:
            check_warm_start(plan, job.initial)
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        handle = JobHandle(job, plan, deadline=deadline, initial_matching=initial_matching)
        with self._inflight_lock:
            if self.max_inflight is not None and self._inflight >= self.max_inflight:
                raise EngineSaturatedError(
                    f"{self._inflight} jobs in flight >= max_inflight={self.max_inflight}"
                )
            self._inflight += 1
            self.jobs_submitted += 1
        # Registered before the backend sees the handle: the inline backend
        # finishes the job inside submit(), and the slot must drop with it.
        handle._add_done_callback(self._release_inflight)
        try:
            self.backend.submit(handle)
        except BaseException:
            # The job never entered the backend; finalise the handle so the
            # in-flight slot is released and waiters are not left hanging.
            handle._finish(JobStatus.CANCELLED)
            raise
        return handle

    def _release_inflight(self, handle: JobHandle) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Jobs submitted to this engine that have not reached a terminal status."""
        with self._inflight_lock:
            return self._inflight

    def map(
        self, jobs: Sequence[MatchingJob], *, timeout: float | None = None
    ) -> list[JobHandle]:
        """Submit every job; handles come back in submission order.

        Parameters
        ----------
        jobs:
            The jobs to schedule, all validated before any executes.
        timeout:
            Per-job deadline in seconds applied to every submission.

        Returns
        -------
        list[JobHandle]
            One handle per job, in submission order; stream them in
            completion order with :meth:`as_completed`.

        Raises
        ------
        ValueError / TypeError / RuntimeError
            As :meth:`submit`; every job is validated before the first one
            is scheduled, so nothing executes if any job is invalid.
        """
        plans = [resolve_job_plan(job) for job in jobs]
        return [
            self.submit(job, plan=plan, timeout=timeout) for job, plan in zip(jobs, plans, strict=True)
        ]

    def run(
        self,
        job: MatchingJob,
        *,
        plan: ExecutionPlan | None = None,
        timeout: float | None = None,
        initial_matching: Matching | None = None,
    ) -> MatchingResult:
        """Submit one job and block for its result (raising on failure)."""
        return self.submit(
            job, plan=plan, timeout=timeout, initial_matching=initial_matching
        ).result()

    def as_completed(
        self, handles: Iterable[JobHandle], *, timeout: float | None = None
    ) -> Iterator[JobHandle]:
        """Stream ``handles`` back in completion order (see :func:`as_completed`)."""
        return as_completed(handles, timeout=timeout)

    # -------------------------------------------------------------- lifecycle
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions; tear the backend down if this engine owns it.

        Idempotent: further calls (and context-manager re-exits) are no-ops,
        and later :meth:`submit` calls raise a plain ``RuntimeError`` rather
        than surfacing executor internals.
        """
        if self._closed:
            return
        # Benign data race: a monotonic flag — concurrent shutdowns at worst
        # both tear down, and backend.shutdown below is itself idempotent.
        self._closed = True  # repro-lint: disable=RPR003
        if self._owns_backend:
            self._finalizer.detach()
            self.backend.shutdown(wait=wait)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Engine(backend={self.backend.name!r}, jobs_submitted={self.jobs_submitted})"
