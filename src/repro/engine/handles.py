"""Per-job futures: status, captured failures and cancellation.

A :class:`JobHandle` is created by :meth:`repro.engine.Engine.submit` and
fulfilled by an :class:`~repro.engine.backends.ExecutionBackend`.  Unlike a
bare :class:`concurrent.futures.Future`, a handle

* carries the resolved :class:`~repro.core.api.ExecutionPlan` alongside the
  job, so backends never re-resolve algorithms;
* exposes a typed :class:`JobStatus` (``ok`` / ``failed`` / ``cancelled`` /
  ``timeout``) instead of an exception-or-result dichotomy;
* captures runner failures as picklable :class:`JobFailure` records — a
  raising job never aborts its siblings;
* enforces an optional deadline: a job that has not *started* by its
  deadline is never executed, and a result that arrives after the deadline
  is discarded and the job marked ``timeout``.
"""

from __future__ import annotations

import threading
import time
import traceback as _traceback
from dataclasses import dataclass
from enum import Enum
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.api import ExecutionPlan
    from repro.engine.job import MatchingJob
    from repro.matching import Matching, MatchingResult

__all__ = [
    "JobCancelledError",
    "JobError",
    "JobFailedError",
    "JobFailure",
    "JobHandle",
    "JobStatus",
    "JobTimeoutError",
]


class JobStatus(str, Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    OK = "ok"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.OK, JobStatus.FAILED, JobStatus.CANCELLED, JobStatus.TIMEOUT)


@dataclass(frozen=True)
class JobFailure:
    """Picklable record of an exception raised by a job's runner."""

    exc_type: str
    message: str
    traceback: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException) -> "JobFailure":
        return cls(
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )

    def __str__(self) -> str:
        return f"{self.exc_type}: {self.message}"


class JobError(Exception):
    """Base class of the exceptions raised by :meth:`JobHandle.result`."""


class JobFailedError(JobError):
    """The job's runner raised; the original error is in :attr:`failure`."""

    def __init__(self, failure: JobFailure) -> None:
        super().__init__(str(failure))
        self.failure = failure


class JobCancelledError(JobError):
    """The job was cancelled before it started."""


class JobTimeoutError(JobError):
    """The job's deadline expired (before or during execution)."""


class JobHandle:
    """Future for one submitted :class:`~repro.engine.job.MatchingJob`.

    Handles are created by the engine and fulfilled by its backend; callers
    interact with :meth:`wait` / :meth:`result` / :meth:`cancel` and the
    :attr:`status` / :attr:`failure` / :attr:`worker` / :attr:`seconds`
    provenance fields.  ``seconds`` is the job's own execution time, measured
    where the job actually ran (true per-job timing even on a process pool).
    """

    def __init__(
        self,
        job: "MatchingJob",
        plan: "ExecutionPlan",
        deadline: float | None = None,
        initial_matching: "Matching | None" = None,
    ) -> None:
        self.job = job
        self.plan = plan
        self.deadline = deadline  # absolute time.monotonic() instant, or None
        self.initial_matching = initial_matching
        self.worker: str | None = None
        self.seconds: float = 0.0
        self._status = JobStatus.PENDING
        self._result: "MatchingResult | None" = None
        self._failure: JobFailure | None = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._callbacks: list[Callable[["JobHandle"], Any]] = []
        self._cancel_hook: Callable[[], bool] | None = None

    # ------------------------------------------------------------------ state
    @property
    def status(self) -> JobStatus:
        return self._status

    @property
    def failure(self) -> JobFailure | None:
        """The captured error of a ``failed`` / ``timeout`` job, else ``None``."""
        return self._failure

    def done(self) -> bool:
        return self._done.is_set()

    def _expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    # ------------------------------------------------------------ transitions
    def _mark_running(self, worker: str) -> bool:
        """Backend hook: move PENDING → RUNNING, honouring the deadline.

        Returns ``False`` (and finalises the handle) when the job was
        cancelled, already finished, or its deadline expired before start.
        """
        with self._lock:
            if self._status is not JobStatus.PENDING:
                return False
            if not self._expired():
                self._status = JobStatus.RUNNING
                self.worker = worker
                return True
        self._finish(
            JobStatus.TIMEOUT,
            failure=JobFailure("JobTimeoutError", "deadline expired before the job started"),
            worker=worker,
        )
        return False

    def _finish(
        self,
        status: JobStatus,
        *,
        result: "MatchingResult | None" = None,
        failure: JobFailure | None = None,
        seconds: float = 0.0,
        worker: str | None = None,
    ) -> bool:
        """Backend hook: finalise the handle (idempotent; first writer wins)."""
        with self._lock:
            if self._done.is_set():
                return False
            if status is JobStatus.OK and self._expired():
                # The result arrived after the deadline: the caller asked for
                # an answer by then, so it is discarded, not returned late.
                status = JobStatus.TIMEOUT
                failure = JobFailure(
                    "JobTimeoutError",
                    f"deadline exceeded after {seconds:.6f}s of execution",
                )
                result = None
            self._status = status
            self._result = result
            self._failure = failure
            self.seconds = seconds
            if worker is not None:
                self.worker = worker
            callbacks = self._callbacks
            self._callbacks = []
            self._done.set()
        for callback in callbacks:
            callback(self)
        return True

    def _add_done_callback(self, callback: Callable[["JobHandle"], Any]) -> None:
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    # ----------------------------------------------------------------- public
    def cancel(self) -> bool:
        """Cancel the job if it has not started; returns whether it is cancelled."""
        with self._lock:
            if self._done.is_set():
                return self._status is JobStatus.CANCELLED
            if self._status is JobStatus.RUNNING:
                return False
            hook = self._cancel_hook
        # The hook (a Future.cancel) may run done-callbacks synchronously, so
        # it must be invoked outside the handle lock.
        if hook is not None and not hook():
            return False
        self._finish(JobStatus.CANCELLED)
        return True

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal status (or ``timeout`` elapses)."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> "MatchingResult":
        """The job's :class:`~repro.matching.MatchingResult`.

        Raises
        ------
        TimeoutError
            The job did not finish within ``timeout`` seconds of waiting.
        JobFailedError
            The runner raised; the original error is on ``.failure``.
        JobCancelledError / JobTimeoutError
            The job was cancelled, or its deadline expired.
        """
        if not self.wait(timeout):
            raise TimeoutError(
                f"job {self.job.job_id or self.job.algorithm!r} not done after {timeout}s"
            )
        if self._status is JobStatus.OK:
            assert self._result is not None
            return self._result
        if self._status is JobStatus.CANCELLED:
            raise JobCancelledError(f"job {self.job.job_id or self.job.algorithm!r} was cancelled")
        if self._status is JobStatus.TIMEOUT:
            raise JobTimeoutError(str(self._failure) if self._failure else "deadline expired")
        assert self._failure is not None
        raise JobFailedError(self._failure)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobHandle(job={self.job.job_id or self.job.algorithm!r}, "
            f"status={self._status.value!r}, worker={self.worker!r})"
        )
