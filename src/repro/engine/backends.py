"""Pluggable execution backends: the protocol plus the in-process pair.

An :class:`ExecutionBackend` receives :class:`~repro.engine.handles.JobHandle`
objects and fulfils them; it never raises for a failing job — runner errors
are captured on the handle, which is what makes batches failure-isolated.
This module holds the protocol, the shared :func:`run_handle` driver and the
in-process backends (:class:`InlineBackend`, :class:`ThreadBackend`,
:class:`CompiledBackend`); the process- and device-pool backends live in
:mod:`repro.engine.process` and :mod:`repro.engine.device`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Protocol, runtime_checkable

from repro.core.api import ExecutionPlan
from repro.engine import execution
from repro.engine.handles import JobFailure, JobHandle, JobStatus

__all__ = [
    "CompiledBackend",
    "ExecutionBackend",
    "InlineBackend",
    "PooledBackend",
    "ThreadBackend",
    "run_handle",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the :class:`~repro.engine.Engine` requires of a backend."""

    #: Short label used in provenance fields and CLI summaries.
    name: str

    def submit(self, handle: JobHandle) -> None:
        """Schedule ``handle``; must return promptly and never raise for job errors."""
        ...  # pragma: no cover - protocol stub

    def shutdown(self, wait: bool = True) -> None:
        """Release pools and workers; the backend is unusable afterwards."""
        ...  # pragma: no cover - protocol stub


def run_handle(handle: JobHandle, worker: str, plan: ExecutionPlan | None = None) -> None:
    """Execute one handle in the current thread, capturing any runner failure.

    ``plan`` overrides the handle's own plan (the device-pool backend
    substitutes a plan bound to a pooled device).  The execution call goes
    through the :mod:`repro.engine.execution` module attribute so test
    monkeypatching reaches every in-process backend.
    """
    if not handle._mark_running(worker):
        return
    started = time.perf_counter()
    try:
        result = execution.execute_job(
            handle.job, plan if plan is not None else handle.plan, handle.initial_matching
        )
    except Exception as exc:
        handle._finish(
            JobStatus.FAILED,
            failure=JobFailure.from_exception(exc),
            seconds=time.perf_counter() - started,
            worker=worker,
        )
    else:
        handle._finish(
            JobStatus.OK,
            result=result,
            seconds=time.perf_counter() - started,
            worker=worker,
        )


class InlineBackend:
    """Synchronous execution in the submitting thread (the default backend).

    ``submit`` blocks until the job finishes, so every handle returned by an
    inline engine is already terminal — zero concurrency, zero overhead, and
    still failure-isolated and deadline-aware.
    """

    name = "inline"

    def submit(self, handle: JobHandle) -> None:
        run_handle(handle, self.name)

    def shutdown(self, wait: bool = True) -> None:
        pass


class CompiledBackend:
    """Synchronous execution with the numba-compiled kernel tier guaranteed.

    Behaves like :class:`InlineBackend` at submit time — the hot kernels
    already dispatch to their compiled twins on *every* backend whenever
    numba is importable (see :mod:`repro.compiled.dispatch`) — but makes
    the compiled tier an explicit requirement: construction fails with an
    actionable error when numba is missing instead of silently running the
    NumPy paths, and warms (compiles) every registered twin up front so no
    submitted job pays one-time JIT cost.
    """

    name = "compiled"

    def __init__(self) -> None:
        from repro.compiled import dispatch

        if not dispatch.NUMBA_AVAILABLE:
            raise ValueError(
                "backend 'compiled' requires numba, which is not installed; "
                "install the compiled extra: pip install 'repro-gpr-matching[compiled]'"
            )
        dispatch.warm_up()

    def submit(self, handle: JobHandle) -> None:
        run_handle(handle, self.name)

    def shutdown(self, wait: bool = True) -> None:
        pass


class PooledBackend:
    """Shared lazy-pool lifecycle of the executor-backed backends.

    Subclasses implement :meth:`_make_pool`; the pool is created on first
    submit, guarded by one lock, and torn down exactly once by
    :meth:`shutdown` (idempotent — further submits raise ``RuntimeError``).
    """

    def __init__(self) -> None:
        self._pool = None
        self._lock = threading.Lock()
        self._closed = False

    def _make_pool(self):
        raise NotImplementedError  # pragma: no cover - subclass responsibility

    def _ensure_pool(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is shut down")
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def _pool_submit(self, fn, *args):
        """Submit ``fn(*args)`` to the pool, keeping the backend's own error contract.

        The executor can be shut down between :meth:`_ensure_pool` and its
        ``submit`` (a racing :meth:`shutdown` from another thread); the
        executor's own ``RuntimeError`` ("cannot schedule new futures...") is
        an internal detail, so it is re-raised as the same clear error a
        checked-first submit would have produced.
        """
        pool = self._ensure_pool()
        try:
            return pool.submit(fn, *args)
        except RuntimeError as exc:
            raise RuntimeError("backend is shut down") from exc

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)


class ThreadBackend(PooledBackend):
    """A persistent :class:`~concurrent.futures.ThreadPoolExecutor` backend.

    Suited to mixed workloads on moderate graphs: NumPy releases the GIL in
    the vectorised kernels, and jobs share the caller's memory so nothing is
    pickled.  The pool is created lazily on first submit.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        super().__init__()
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-engine"
        )

    def submit(self, handle: JobHandle) -> None:
        future = self._pool_submit(run_handle, handle, self.name)
        handle._cancel_hook = future.cancel
