"""The engine's single execution path over the shared dispatch pipeline.

Every backend — inline, thread pool, process pool, device pool — funnels
through :func:`execute_job`, so batch, streaming and serial dispatch are
bit-identical.  Tests monkeypatch this module's ``execute_job`` attribute to
count (or sabotage) actual computations; backends therefore always call it
through the module, never through a captured reference.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.api import ExecutionPlan, resolve_algorithm
from repro.engine.job import MatchingJob
from repro.matching import Matching, MatchingResult
from repro.seq.greedy import cheap_matching, karp_sipser_matching

__all__ = ["check_warm_start", "execute_job", "resolve_job_plan", "validate_job_args"]

#: Warm-start heuristic name → matching factory.
_INITIALIZERS: dict[str, Callable] = {
    "empty": Matching.empty,
    "cheap": lambda graph: cheap_matching(graph).matching,
    "karp-sipser": lambda graph: karp_sipser_matching(graph, seed=0).matching,
}


def check_warm_start(plan: ExecutionPlan, initial: str | None) -> None:
    """Raise ``TypeError`` if ``plan``'s algorithm cannot take the named warm-start.

    The single source of this rule — shared by :func:`resolve_job_plan`, the
    engine's plan-provided submit path and the CLI's manifest validation.
    """
    if initial is not None and not plan.spec.accepts_initial:
        raise TypeError(
            f"algorithm {plan.algorithm!r} produces an initial matching; "
            f"it does not accept the {initial!r} warm-start"
        )
    if initial is not None and plan.shards is not None:
        raise TypeError(
            f"sharded execution of {plan.algorithm!r} does not accept "
            f"the {initial!r} warm-start (shards start from their own local solves)"
        )


def validate_job_args(algorithm: str, kwargs=None, initial: str | None = None) -> ExecutionPlan:
    """Graph-free validation of a job's dispatch arguments.

    Resolves ``algorithm`` + ``kwargs`` into an
    :class:`~repro.core.api.ExecutionPlan` and checks the warm-start, without
    needing a :class:`~repro.engine.job.MatchingJob` (and therefore a graph)
    — manifest loaders use this to reject bad lines before building graphs.
    Raises ``ValueError`` for an unknown algorithm, ``TypeError`` for unknown
    keyword arguments or an inapplicable warm-start.
    """
    plan = resolve_algorithm(algorithm, **(kwargs or {}))
    check_warm_start(plan, initial)
    return plan


def resolve_job_plan(job: MatchingJob) -> ExecutionPlan:
    """Resolve a job into an :class:`~repro.core.api.ExecutionPlan`, validating it.

    Raises ``ValueError`` for an unknown algorithm and ``TypeError`` for
    unknown keyword arguments or an inapplicable warm-start — before anything
    executes, so a bad job can never waste a batch.
    """
    return validate_job_args(job.algorithm, job.kwargs, job.initial)


def execute_job(
    job: MatchingJob,
    plan: ExecutionPlan | None = None,
    initial_matching: Matching | None = None,
) -> MatchingResult:
    """Run one job through the shared dispatch pipeline.

    ``plan`` lets callers reuse the :class:`~repro.core.api.ExecutionPlan`
    already built during validation (the engine always passes one, and the
    process-pool backend ships it to workers so they never re-resolve).
    ``initial_matching`` overrides the job's *named* warm-start with an
    explicit matching — the benchmark harness uses this to start every
    algorithm from one common cheap matching, as in the paper's protocol.
    """
    if plan is None:
        plan = resolve_job_plan(job)
    initial = initial_matching
    if initial is None and job.initial is not None:
        initial = _INITIALIZERS[job.initial](job.graph)
    return plan.run(job.graph, initial)
