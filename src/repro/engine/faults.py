"""Deterministic fault injection for execution backends.

:class:`FaultInjectingBackend` wraps any :class:`~repro.engine.backends.ExecutionBackend`
and sabotages a seeded subset of the jobs flowing through it:

* ``crash``  — the runner raises :class:`InjectedCrashError`, exercising the
  engine's failure-isolation path (the handle must land ``failed`` with the
  captured error while sibling jobs are untouched);
* ``stall``  — the runner sleeps past the job's deadline before producing its
  result, exercising the late-result-discard path (the handle must land
  ``timeout``, never hang);
* ``slow``   — the runner sleeps a fixed warm-up before executing normally,
  modelling cold workers (the job must still succeed, bit-identically).

Faults are drawn per submission *sequence number* from a seeded hash, so a
given :class:`FaultSchedule` injects the same faults in the same order no
matter which backend executes the jobs or how threads interleave — every
robustness claim the server makes can therefore be pinned by a test instead
of asserted in prose.  The wrapper works by replacing the handle's resolved
plan with a picklable :class:`FaultyPlan`, so it composes with the inline,
thread *and* process backends (the sabotage ships to pool workers along with
the plan).

The test harness in ``tests/faultinject.py`` builds on this module; the
server's ``repro serve --fault-*`` flags use it directly for the CI smoke.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.engine.backends import ExecutionBackend
from repro.engine.handles import JobHandle

__all__ = [
    "FAULT_KINDS",
    "FaultInjectingBackend",
    "FaultSchedule",
    "FaultyPlan",
    "InjectedCrashError",
]

#: The injectable fault kinds, in schedule-draw order.
FAULT_KINDS = ("crash", "stall", "slow")


class InjectedCrashError(RuntimeError):
    """Raised by a sabotaged runner; must surface as a captured ``JobFailure``."""


@dataclass(frozen=True)
class FaultSchedule:
    """Seeded per-job fault assignment.

    Each rate is the probability of that fault for one submission; they are
    drawn from one uniform sample per sequence number, so the rates must sum
    to at most 1.  ``stall_seconds`` is the *minimum* stall — when the job
    carries a deadline the stall is stretched to ``deadline_remaining +
    stall_margin`` so an injected stall on a deadlined job always outlives
    the deadline (a bounded stand-in for a genuine hang).
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    slow_rate: float = 0.0
    stall_seconds: float = 0.2
    stall_margin: float = 0.15
    slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in ("crash_rate", "stall_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.crash_rate + self.stall_rate + self.slow_rate > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to at most 1")
        if self.stall_seconds < 0 or self.stall_margin < 0 or self.slow_seconds < 0:
            raise ValueError("fault durations must be non-negative")

    @property
    def any_faults(self) -> bool:
        return (self.crash_rate + self.stall_rate + self.slow_rate) > 0.0

    def draw(self, sequence: int) -> str | None:
        """The fault for submission number ``sequence`` (``None`` = clean).

        Deterministic in ``(seed, sequence)`` alone — independent of thread
        interleaving, backend choice and draw order.
        """
        sample = random.Random(f"{self.seed}:{sequence}").random()
        if sample < self.crash_rate:
            return "crash"
        if sample < self.crash_rate + self.stall_rate:
            return "stall"
        if sample < self.crash_rate + self.stall_rate + self.slow_rate:
            return "slow"
        return None


@dataclass(frozen=True)
class FaultyPlan:
    """A picklable sabotage wrapper around a resolved execution plan.

    Quacks like :class:`~repro.core.api.ExecutionPlan` where backends need it
    (``run`` plus the ``algorithm`` / ``spec`` / ``deterministic`` surface)
    and ships to process-pool workers exactly like the plan it wraps.
    """

    plan: object
    fault: str
    delay_seconds: float = 0.0

    @property
    def algorithm(self):
        return self.plan.algorithm

    @property
    def spec(self):
        return self.plan.spec

    @property
    def deterministic(self):
        return self.plan.deterministic

    def run(self, graph, initial=None):
        if self.fault == "crash":
            raise InjectedCrashError(
                f"injected crash (algorithm {self.plan.algorithm!r})"
            )
        time.sleep(self.delay_seconds)
        return self.plan.run(graph, initial)


@dataclass(frozen=True)
class InjectionRecord:
    """One injected fault: which submission, which job, which sabotage."""

    sequence: int
    job_id: str | None
    fault: str


@dataclass
class FaultInjectingBackend:
    """An :class:`ExecutionBackend` decorator that sabotages scheduled jobs.

    Wrap any backend::

        schedule = FaultSchedule(seed=7, crash_rate=0.1, stall_rate=0.1)
        backend = FaultInjectingBackend(ThreadBackend(2), schedule)
        engine = Engine(backend=backend, own_backend=True)

    Every submission draws its fault from the schedule; sabotaged handles get
    ``handle.injected_fault`` set (``"crash"`` / ``"stall"`` / ``"slow"``) so
    callers can attribute failures to injections, and the full log is kept in
    :attr:`injected`.  Clean jobs pass through untouched.
    """

    inner: ExecutionBackend
    schedule: FaultSchedule
    injected: list[InjectionRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._sequence = 0
        self.submitted = 0
        self.counts = {kind: 0 for kind in FAULT_KINDS}

    @property
    def name(self) -> str:
        return f"fault+{self.inner.name}"

    def _stall_delay(self, handle: JobHandle) -> float:
        base = self.schedule.stall_seconds
        if handle.deadline is None:
            return base
        remaining = handle.deadline - time.monotonic()
        return max(base, remaining + self.schedule.stall_margin)

    def submit(self, handle: JobHandle) -> None:
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            self.submitted += 1
            fault = self.schedule.draw(sequence)
            if fault is not None:
                self.counts[fault] += 1
                self.injected.append(InjectionRecord(sequence, handle.job.job_id, fault))
        if fault is not None:
            delay = (
                self._stall_delay(handle)
                if fault == "stall"
                else self.schedule.slow_seconds if fault == "slow" else 0.0
            )
            handle.plan = FaultyPlan(handle.plan, fault, delay)
            handle.injected_fault = fault
        self.inner.submit(handle)

    def shutdown(self, wait: bool = True) -> None:
        self.inner.shutdown(wait=wait)
