"""Process-pool backend: a persistent pool that ships resolved plans.

Improvements over the service's original per-batch ``multiprocessing.Pool``:

* the pool is **persistent** — created lazily on first submit and reused
  across batches, so worker start-up is paid once per engine, not per batch;
* workers receive the already-resolved
  :class:`~repro.core.api.ExecutionPlan` instead of re-resolving the
  algorithm and rebuilding its config per job;
* timings are **true per-job** — measured around the job inside the worker —
  rather than the pool-mean attribution the old service reported.

Plans built from a job's name + kwargs are picklable (runners are
module-level functions, configs are frozen dataclasses, and such plans carry
no device closure).  A plan with a caller-supplied ``device_factory``
closure is not; the pickling error is captured on the handle as an ordinary
job failure rather than aborting the batch.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any

from repro.core.api import ExecutionPlan
from repro.engine import execution
from repro.engine.backends import PooledBackend
from repro.engine.handles import JobFailure, JobHandle, JobStatus
from repro.engine.job import MatchingJob

__all__ = ["ProcessPoolBackend"]


def _process_worker(
    job: MatchingJob, plan: ExecutionPlan, initial_matching: Any, deadline: float | None
) -> tuple[Any, float, bool]:
    """Top-level worker target (must be picklable).

    Returns ``(result, seconds, expired)``.  ``deadline`` is an absolute
    :func:`time.monotonic` instant — comparable across processes on the same
    machine — checked here so a job whose deadline passed while queued in the
    executor is never executed, matching the in-process backends.
    """
    if deadline is not None and time.monotonic() > deadline:
        return None, 0.0, True
    started = time.perf_counter()
    result = execution.execute_job(job, plan, initial_matching)
    return result, time.perf_counter() - started, False


class ProcessPoolBackend(PooledBackend):
    """Executes jobs on a persistent :class:`~concurrent.futures.ProcessPoolExecutor`.

    The parent cannot observe a worker picking a job up, so handles stay
    ``pending`` until completion (there is no ``running`` phase to read);
    ``cancel()`` therefore succeeds exactly while the executor has not
    started the future.  Deadlines are still enforced on both sides of the
    queue: at submit time here, and before execution inside the worker.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, mp_context: Any = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        super().__init__()
        self.max_workers = max_workers
        self._mp_context = mp_context

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers, mp_context=self._mp_context)

    def submit(self, handle: JobHandle) -> None:
        if handle._expired():
            handle._finish(
                JobStatus.TIMEOUT,
                failure=JobFailure("JobTimeoutError", "deadline expired before the job started"),
                worker=self.name,
            )
            return
        future = self._pool_submit(
            _process_worker, handle.job, handle.plan, handle.initial_matching, handle.deadline
        )
        handle._cancel_hook = future.cancel
        future.add_done_callback(functools.partial(self._complete, handle))

    def _complete(self, handle: JobHandle, future: Future) -> None:
        if future.cancelled():
            handle._finish(JobStatus.CANCELLED, worker=self.name)
            return
        exc = future.exception()
        if exc is not None:
            # Runner errors and payload pickling errors both land here; either
            # way the failure stays on this handle and siblings are untouched.
            handle._finish(
                JobStatus.FAILED,
                failure=JobFailure.from_exception(exc),
                worker=self.name,
            )
            return
        result, seconds, expired = future.result()
        if expired:
            handle._finish(
                JobStatus.TIMEOUT,
                failure=JobFailure("JobTimeoutError", "deadline expired before the job started"),
                worker=self.name,
            )
            return
        handle._finish(JobStatus.OK, result=result, seconds=seconds, worker=self.name)
