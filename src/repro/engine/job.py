"""The job model of the execution engine.

A :class:`MatchingJob` is a self-contained unit of work — graph, algorithm
name, keyword arguments and an optional warm-start heuristic — that can be
hashed (for the result cache) and pickled (for the process-pool backend).
The warm-start is named rather than passed as a
:class:`~repro.matching.Matching` so jobs stay cheap to hash and so the same
job produces the same key on every process.

This module is the bottom of the engine's layering: it depends only on the
graph container.  :mod:`repro.service` re-exports :class:`MatchingJob` for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

from repro.graph.bipartite import BipartiteGraph

__all__ = ["INITIAL_CHOICES", "MatchingJob"]

#: Accepted warm-start heuristic names (``None`` means the algorithm default).
INITIAL_CHOICES = (None, "empty", "cheap", "karp-sipser")


def _freeze(value: Any) -> Any:
    """Recursively convert a kwargs value into a hashable representative."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = tuple(_freeze(v) for v in value)
        return tuple(sorted(items)) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Config objects and other rich values: fall back to their repr, which is
    # stable for the library's frozen dataclass configs.
    return repr(value)


@dataclass(frozen=True, eq=False)
class MatchingJob:
    """One unit of work for the :class:`~repro.engine.Engine`.

    Attributes
    ----------
    graph:
        The bipartite graph to match.
    algorithm:
        Registry name (case-insensitive; canonicalised on construction).
    kwargs:
        Keyword arguments forwarded to
        :func:`repro.core.api.resolve_algorithm` (config fields, ``seed``,
        ``max_phases``, ...).
    initial:
        Warm-start heuristic: ``None`` (algorithm default), ``"empty"``,
        ``"cheap"`` or ``"karp-sipser"``.
    job_id:
        Optional caller-supplied identifier, echoed back in results.
    """

    graph: BipartiteGraph
    algorithm: str = "g-pr"
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    initial: str | None = None
    job_id: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", str(self.algorithm).strip().lower())
        if not isinstance(self.kwargs, Mapping):
            raise TypeError(
                f"kwargs must be a mapping, got {type(self.kwargs).__name__}"
            )
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        if self.initial not in INITIAL_CHOICES:
            raise ValueError(
                f"unknown warm-start {self.initial!r}; choose from {INITIAL_CHOICES}"
            )

    # Identity follows the cache key (plus the caller's job_id), not the raw
    # fields — the dataclass-generated __eq__/__hash__ would trip over the
    # graph's numpy arrays and the kwargs dict.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchingJob):
            return NotImplemented
        return self.cache_key() == other.cache_key() and self.job_id == other.job_id

    def __hash__(self) -> int:
        return hash((self.cache_key(), self.job_id))

    def cache_key(self) -> tuple:
        """Key identifying the *outcome* of this job: structure + dispatch args.

        The graph enters through :meth:`BipartiteGraph.content_hash`, so two
        jobs on structurally identical graphs (even renamed copies) share a
        key; ``job_id`` never influences it.
        """
        return (
            self.graph.content_hash(),
            self.algorithm,
            _freeze(self.kwargs),
            self.initial,
        )
