"""Device-pool backend: multiplex jobs over a pool of virtual GPUs.

The paper's premise is one matching computation mapped onto heterogeneous
substrates; this backend models the GPU-server deployment of that idea — a
fixed set of :class:`~repro.gpusim.VirtualGPU` instances served by as many
threads, each job borrowing a device for the duration of its run.  GPU
algorithms (``g-pr*``, ``g-hkdw``) execute on the borrowed device (its cost
ledger is reset per job, so modelled timings stay per-job); CPU algorithms
pass through unchanged, so mixed batches work.

The default device is the full-spec :class:`~repro.gpusim.device.DeviceSpec`
— the same device :func:`~repro.core.gpr.gpr_matching` creates when given
none — so results are bit-identical with every other backend.  Pass
``device_factory`` (e.g. :func:`repro.bench.harness.reference_device`) to
pool scaled devices instead.
"""

from __future__ import annotations

import dataclasses
import queue
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Iterable

from repro.engine.backends import PooledBackend, run_handle
from repro.engine.handles import JobHandle
from repro.gpusim.device import VirtualGPU

__all__ = ["DevicePoolBackend"]


class DevicePoolBackend(PooledBackend):
    """Runs jobs on worker threads, each borrowing a pooled :class:`VirtualGPU`.

    Parameters
    ----------
    devices:
        Pool size (an ``int``), or an explicit iterable of pre-built
        :class:`VirtualGPU` instances.
    device_factory:
        Factory used to build the pool when ``devices`` is an ``int``;
        defaults to ``VirtualGPU()`` (full-spec device).
    """

    name = "device"

    def __init__(
        self,
        devices: int | Iterable[VirtualGPU] = 2,
        device_factory: Callable[[], VirtualGPU] | None = None,
    ) -> None:
        factory = device_factory or VirtualGPU
        if isinstance(devices, int):
            if devices <= 0:
                raise ValueError("devices must be positive")
            pool = [factory() for _ in range(devices)]
        else:
            pool = list(devices)
            if not pool:
                raise ValueError("devices must be a positive count or a non-empty iterable")
        super().__init__()
        self.devices = pool
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        for index, device in enumerate(pool):
            self._queue.put((index, device))

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=len(self.devices), thread_name_prefix="repro-device"
        )

    def submit(self, handle: JobHandle) -> None:
        future = self._pool_submit(self._run, handle)
        handle._cancel_hook = future.cancel

    def _run(self, handle: JobHandle) -> None:
        index, device = self._queue.get()
        try:
            plan = handle.plan
            if plan.spec.accepts_device:
                device.reset()  # per-job ledger: modelled time is this job's alone
                plan = dataclasses.replace(plan, device_factory=lambda: device)
            run_handle(handle, f"device:{index}", plan)
        finally:
            self._queue.put((index, device))
