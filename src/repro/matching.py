"""Matching containers shared by every algorithm in the library.

A matching over a bipartite graph ``G = (VR ∪ VC, E)`` is stored as two
arrays, mirroring the ``µ`` array of the paper:

* ``row_match[u]`` — the column matched to row ``u``, or ``-1``;
* ``col_match[v]`` — the row matched to column ``v``, or ``-1``.

The GPU algorithm additionally uses ``-2`` on the column side to mark columns
proven unmatchable; :meth:`Matching.canonical` normalises those back to
``-1`` for comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["Matching", "MatchingResult", "UNMATCHED", "UNMATCHABLE"]

#: Sentinel for an unmatched vertex (the paper's ``µ(u) = −1``).
UNMATCHED: int = -1
#: Sentinel for a column proven unmatchable (the paper's ``µ(v) = −2``).
UNMATCHABLE: int = -2


@dataclass
class Matching:
    """A (not necessarily maximum) matching of a bipartite graph."""

    row_match: np.ndarray
    col_match: np.ndarray

    def __post_init__(self) -> None:
        self.row_match = np.asarray(self.row_match, dtype=np.int64)
        self.col_match = np.asarray(self.col_match, dtype=np.int64)

    # ------------------------------------------------------------ constructors
    @classmethod
    def empty(cls, graph: BipartiteGraph) -> "Matching":
        """The empty matching of ``graph``."""
        return cls(
            row_match=np.full(graph.n_rows, UNMATCHED, dtype=np.int64),
            col_match=np.full(graph.n_cols, UNMATCHED, dtype=np.int64),
        )

    @classmethod
    def from_pairs(
        cls,
        graph: BipartiteGraph,
        pairs: Mapping[int, int] | list[tuple[int, int]],
        *,
        enforce_edges: bool = False,
    ) -> "Matching":
        """Build a matching from ``(row, col)`` pairs; raises on conflicts.

        Every pair is bounds-checked against ``graph`` — a negative or
        out-of-range index raises ``ValueError`` instead of silently wrapping
        through numpy indexing onto another vertex.  With ``enforce_edges``,
        each pair must also be an edge of ``graph``.
        """
        matching = cls.empty(graph)
        items = pairs.items() if isinstance(pairs, Mapping) else pairs
        for u, v in items:
            u, v = int(u), int(v)
            if not 0 <= u < graph.n_rows:
                raise ValueError(
                    f"pair ({u}, {v}): row index {u} out of range [0, {graph.n_rows})"
                )
            if not 0 <= v < graph.n_cols:
                raise ValueError(
                    f"pair ({u}, {v}): column index {v} out of range [0, {graph.n_cols})"
                )
            if enforce_edges and not graph.has_edge(u, v):
                raise ValueError(f"pair ({u}, {v}) is not an edge of graph {graph.name!r}")
            if matching.row_match[u] != UNMATCHED or matching.col_match[v] != UNMATCHED:
                raise ValueError(f"pair ({u}, {v}) conflicts with an earlier pair")
            matching.row_match[u] = v
            matching.col_match[v] = u
        return matching

    # -------------------------------------------------------------- properties
    @property
    def cardinality(self) -> int:
        """Number of matched row vertices (== matched columns for a consistent matching)."""
        return int(np.count_nonzero(self.row_match >= 0))

    def matched_rows(self) -> np.ndarray:
        """Indices of matched rows."""
        return np.flatnonzero(self.row_match >= 0)

    def unmatched_rows(self) -> np.ndarray:
        """Indices of unmatched rows."""
        return np.flatnonzero(self.row_match == UNMATCHED)

    def matched_columns(self) -> np.ndarray:
        """Indices of columns matched consistently (``col_match[v] = u`` and ``row_match[u] = v``)."""
        v = np.flatnonzero(self.col_match >= 0)
        consistent = self.row_match[self.col_match[v]] == v
        return v[consistent]

    def unmatched_columns(self) -> np.ndarray:
        """Indices of columns that are not consistently matched."""
        all_cols = np.arange(len(self.col_match))
        return np.setdiff1d(all_cols, self.matched_columns(), assume_unique=True)

    def deficiency(self, maximum_cardinality: int) -> int:
        """Difference between a maximum matching's cardinality and this one's."""
        return maximum_cardinality - self.cardinality

    def check_compatible(self, graph: BipartiteGraph, *, context: str = "matching") -> None:
        """Raise ``ValueError`` unless this matching fits ``graph``'s shape.

        Checks the array lengths against ``(n_rows, n_cols)`` and the matched
        entries against the opposite side's vertex range, so a matching built
        for a *different* graph fails here with a clear message instead of
        producing silent nonsense (or a cryptic ``IndexError``) deep inside a
        kernel.
        """
        if len(self.row_match) != graph.n_rows or len(self.col_match) != graph.n_cols:
            raise ValueError(
                f"{context} has shape ({len(self.row_match)}, {len(self.col_match)}) "
                f"but graph {graph.name!r} has shape ({graph.n_rows}, {graph.n_cols}); "
                "was it built for a different graph?"
            )
        if len(self.row_match) and int(self.row_match.max(initial=UNMATCHED)) >= graph.n_cols:
            raise ValueError(
                f"{context} matches a row to column {int(self.row_match.max())}, outside "
                f"graph {graph.name!r}'s column range [0, {graph.n_cols})"
            )
        if len(self.col_match) and int(self.col_match.max(initial=UNMATCHED)) >= graph.n_rows:
            raise ValueError(
                f"{context} matches a column to row {int(self.col_match.max())}, outside "
                f"graph {graph.name!r}'s row range [0, {graph.n_rows})"
            )

    # ------------------------------------------------------------------- utils
    def copy(self) -> "Matching":
        """Deep copy."""
        return Matching(self.row_match.copy(), self.col_match.copy())

    def canonical(self) -> "Matching":
        """Resolve inconsistencies: keep only pairs with ``row_match[u] = v`` and ``col_match[v] = u``.

        This is the sequential equivalent of the paper's ``FIXMATCHING``
        kernel.  The row side is taken as ground truth (the paper proves the
        row entries are always correct at termination).
        """
        fixed = Matching(
            row_match=self.row_match.copy(),
            col_match=np.full(len(self.col_match), UNMATCHED, dtype=np.int64),
        )
        matched = np.flatnonzero(self.row_match >= 0)
        fixed.col_match[self.row_match[matched]] = matched
        return fixed

    def pairs(self) -> list[tuple[int, int]]:
        """All matched ``(row, col)`` pairs, sorted by row."""
        rows = self.matched_rows()
        return [(int(u), int(self.row_match[u])) for u in rows]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return np.array_equal(self.row_match, other.row_match) and np.array_equal(
            self.col_match, other.col_match
        )


@dataclass
class MatchingResult:
    """Outcome of running one matching algorithm on one graph.

    Attributes
    ----------
    algorithm:
        Algorithm identifier (e.g. ``"PR"``, ``"G-PR-Shr"``).
    matching:
        The final matching (already canonicalised).
    cardinality:
        Cached ``matching.cardinality``.
    counters:
        Raw work counters (edges scanned, pushes, kernel launches, ...);
        algorithm-specific keys, consumed by :mod:`repro.bench`.
    modeled_time:
        Modelled execution time in seconds on the reference machine for this
        algorithm's class (CPU / multicore / GPU), or ``None`` when the
        algorithm does not provide a cost model.
    wall_time:
        Wall-clock seconds spent by this Python implementation.
    duals:
        Optional optimality certificate attached by the weighted solvers (a
        :class:`repro.weighted.DualCertificate`); ``None`` for cardinality
        algorithms.  Its arrays are immutable, so copies may share them.
    """

    algorithm: str
    matching: Matching
    cardinality: int
    counters: dict = field(default_factory=dict)
    modeled_time: float | None = None
    wall_time: float = 0.0
    duals: object | None = None

    def copy(self) -> "MatchingResult":
        """A deep-enough copy: private matching arrays and counters dict.

        Used by the result caches so a caller mutating a served result can
        never corrupt the cached entry (or a sibling job's result).
        """
        return MatchingResult(
            algorithm=self.algorithm,
            matching=self.matching.copy(),
            cardinality=self.cardinality,
            counters=dict(self.counters),
            modeled_time=self.modeled_time,
            wall_time=self.wall_time,
            duals=self.duals,
        )

    @classmethod
    def create(
        cls,
        algorithm: str,
        matching: Matching,
        counters: dict | None = None,
        modeled_time: float | None = None,
        wall_time: float = 0.0,
        duals: object | None = None,
    ) -> "MatchingResult":
        """Build a result, canonicalising the matching and caching its cardinality."""
        canonical = matching.canonical()
        return cls(
            algorithm=algorithm,
            matching=canonical,
            cardinality=canonical.cardinality,
            counters=dict(counters or {}),
            modeled_time=modeled_time,
            wall_time=wall_time,
            duals=duals,
        )
