"""Result caches for the matching service.

Two implementations with the same ``get`` / ``put`` protocol:

* :class:`ResultCache` — in-process LRU keyed by
  :meth:`MatchingJob.cache_key`, bounded by ``max_entries``.
* :class:`DiskCache` — persistent pickle-per-key store so repeated CLI
  invocations (``python -m repro.cli batch``) hit the cache across
  processes.

Both count hits and misses; the service aggregates those into its batch
reports.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.matching import MatchingResult

__all__ = ["DiskCache", "ResultCache"]


class ResultCache:
    """Bounded in-memory LRU cache of :class:`MatchingResult` objects."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, MatchingResult] = OrderedDict()

    def get(self, key: tuple) -> MatchingResult | None:
        """The cached result for ``key``, or ``None`` (counted as a miss).

        Hits are returned as copies so a caller mutating a served result
        cannot corrupt the cached entry.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result.copy()

    def put(self, key: tuple, result: MatchingResult) -> None:
        """Store ``result``, evicting the least-recently-used entry when full.

        A private copy is stored, so later mutation of ``result`` by the
        caller cannot reach the cache.
        """
        with self._lock:
            self._entries[key] = result.copy()
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries


class DiskCache:
    """Persistent result cache: one pickle file per key under ``directory``.

    File names are the SHA-256 of the key's repr — the key already contains
    the graph's content hash, so collisions would require a SHA-256 collision.
    Corrupt or unreadable entries are treated as misses and overwritten on
    the next ``put``.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def _path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.pkl"

    def get(self, key: tuple) -> MatchingResult | None:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            with self._lock:
                self.misses += 1
            return None
        if not isinstance(result, MatchingResult):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return result

    def put(self, key: tuple, result: MatchingResult) -> None:
        path = self._path(key)
        # Unique temp name per writer: concurrent processes missing on the
        # same key must not interleave writes before the atomic rename.
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            Path(tmp).replace(path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    def clear(self) -> None:
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))
