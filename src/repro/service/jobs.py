"""Job and result containers for the batched matching service.

:class:`MatchingJob` lives in :mod:`repro.engine.job` (the engine is the
base execution layer) and is re-exported here for backwards compatibility.
This module keeps the service-level containers: :class:`JobResult` — one
job's outcome with provenance and per-job status — and :class:`BatchReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.handles import JobFailure
from repro.engine.job import INITIAL_CHOICES, MatchingJob
from repro.matching import MatchingResult

__all__ = ["BatchReport", "INITIAL_CHOICES", "JobResult", "MatchingJob"]


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job, with provenance.

    ``status`` is ``"ok"`` for a computed (or cached) result, else the
    terminal :class:`~repro.engine.handles.JobStatus` value (``"failed"`` /
    ``"cancelled"`` / ``"timeout"``) with the captured ``error``; failed jobs
    carry ``result=None`` and never abort their batch.  ``cached`` tells
    whether the result was served without recomputation; ``worker`` records
    where the computation ran (``"inline"``, ``"thread"``, ``"process"``,
    ``"device:N"``), or ``"cache"`` for a cross-batch cache hit, or
    ``"dedup"`` for a job that piggybacked on an identical job in the same
    batch.
    """

    job: MatchingJob
    result: MatchingResult | None
    cached: bool
    worker: str
    seconds: float = 0.0
    status: str = "ok"
    error: JobFailure | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cardinality(self) -> int:
        if self.result is None:
            raise ValueError(f"job {self.job.job_id!r} has no result (status={self.status!r})")
        return self.result.cardinality


@dataclass
class BatchReport:
    """All results of one :meth:`MatchingService.submit_batch` call.

    ``results`` preserves the submission order.  ``executed`` counts actual
    algorithm runs (including failed attempts); ``cache_hits`` the jobs
    served from the cross-batch cache; ``deduplicated`` the jobs that
    piggybacked on an identical job in the same batch; ``failed`` the jobs
    whose status is not ``"ok"``.  ``executed + cache_hits + deduplicated ==
    n_jobs``.
    """

    results: list[JobResult]
    executed: int
    cache_hits: int
    deduplicated: int
    wall_seconds: float
    failed: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.results)

    @property
    def all_ok(self) -> bool:
        return self.failed == 0

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs served without recomputation (cache + dedup)."""
        if not self.results:
            return 0.0
        return (self.cache_hits + self.deduplicated) / len(self.results)

    def failures(self) -> list[JobResult]:
        """The non-``ok`` results, in submission order."""
        return [r for r in self.results if not r.ok]

    def cardinalities(self) -> list[int | None]:
        """Matching cardinalities in submission order (``None`` for failed jobs)."""
        return [r.result.cardinality if r.result is not None else None for r in self.results]
