"""Batched matching service.

The batch execution layer over the library's single dispatch pipeline
(:func:`repro.core.api.resolve_algorithm`):

* :class:`~repro.service.jobs.MatchingJob` — one unit of work (graph +
  algorithm + kwargs + optional warm-start), hashable and picklable;
* :class:`~repro.service.service.MatchingService` — executes batches of
  jobs, memoizing results on the graph's content hash and optionally
  fanning misses out over a ``multiprocessing`` pool;
* :class:`~repro.service.cache.ResultCache` /
  :class:`~repro.service.cache.DiskCache` — in-memory LRU and persistent
  result stores.

Quickstart
----------
>>> from repro.generators import uniform_random_bipartite
>>> from repro.service import MatchingJob, MatchingService
>>> g = uniform_random_bipartite(200, 200, avg_degree=4, seed=1)
>>> service = MatchingService()
>>> report = service.submit_batch([MatchingJob(graph=g, algorithm=a)
...                                for a in ("g-pr", "pr", "hk")])
>>> len(set(report.cardinalities())) == 1
True
"""

from repro.service.cache import DiskCache, ResultCache
from repro.service.jobs import BatchReport, JobResult, MatchingJob
from repro.service.service import MatchingService, execute_job

__all__ = [
    "BatchReport",
    "DiskCache",
    "JobResult",
    "MatchingJob",
    "MatchingService",
    "ResultCache",
    "execute_job",
]
