"""Batched matching service.

A thin caching facade over the execution engine (:mod:`repro.engine`):

* :class:`~repro.engine.job.MatchingJob` — one unit of work (graph +
  algorithm + kwargs + optional warm-start), hashable and picklable
  (re-exported here);
* :class:`~repro.service.service.MatchingService` — executes batches of
  jobs on an :class:`~repro.engine.Engine`, memoizing results on the
  graph's content hash, deduplicating identical jobs within a batch, and
  isolating per-job failures (``status="failed"`` instead of a batch-wide
  exception);
* :class:`~repro.service.cache.ResultCache` /
  :class:`~repro.service.cache.DiskCache` — in-memory LRU and persistent
  result stores.

Quickstart
----------
>>> from repro.generators import uniform_random_bipartite
>>> from repro.service import MatchingJob, MatchingService
>>> g = uniform_random_bipartite(200, 200, avg_degree=4, seed=1)
>>> service = MatchingService()
>>> report = service.submit_batch([MatchingJob(graph=g, algorithm=a)
...                                for a in ("g-pr", "pr", "hk")])
>>> len(set(report.cardinalities())) == 1
True
"""

from repro.service.cache import DiskCache, ResultCache
from repro.service.jobs import BatchReport, JobResult, MatchingJob
from repro.service.service import MatchingService, execute_job

__all__ = [
    "BatchReport",
    "DiskCache",
    "JobResult",
    "MatchingJob",
    "MatchingService",
    "ResultCache",
    "execute_job",
]
