"""Batched matching service: a caching facade over the execution engine.

The service keeps the batch-level concerns — cross-batch result caching,
intra-batch deduplication, accounting — and delegates all execution to a
:class:`repro.engine.Engine`:

* every job is resolved into an :class:`~repro.core.api.ExecutionPlan`
  through the same path as :func:`~repro.core.api.max_bipartite_matching`,
  so batch and serial execution are bit-identical;
* results are memoized on :meth:`MatchingJob.cache_key` (graph content hash
  + algorithm + kwargs + warm-start), both across batches (via a
  :class:`~repro.service.cache.ResultCache` or persistent
  :class:`~repro.service.cache.DiskCache`) and within a batch (identical
  jobs are deduplicated and executed once);
* cache misses run on the engine's backend — inline, thread pool,
  persistent process pool, or a virtual-GPU device pool — and a job whose
  runner raises is reported as ``status="failed"`` with its captured error
  while its siblings complete normally.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.engine import Engine, ExecutionBackend, JobStatus
from repro.engine.execution import execute_job, resolve_job_plan
from repro.service.cache import DiskCache, ResultCache
from repro.service.jobs import BatchReport, JobResult, MatchingJob

__all__ = ["MatchingService", "execute_job"]


class MatchingService:
    """Executes batches of matching jobs with caching and optional parallelism.

    Parameters
    ----------
    workers:
        ``0`` / ``None`` — execute cache misses inline in this process;
        ``n > 0`` — execute them on a persistent pool of ``n`` workers
        (process pool unless ``backend`` says otherwise).
    cache:
        ``True`` (default) — a fresh in-memory :class:`ResultCache`;
        ``False`` / ``None`` — no caching and no intra-batch deduplication;
        or a caller-supplied :class:`ResultCache` / :class:`DiskCache` to
        share across services or processes.
    backend:
        Execution backend name (``"inline"`` / ``"thread"`` / ``"process"``
        / ``"device"``) or a ready
        :class:`~repro.engine.backends.ExecutionBackend`.  Default: derived
        from ``workers`` (``0`` → inline, ``n > 0`` → process pool).
    engine:
        A caller-owned :class:`~repro.engine.Engine` to execute on, mutually
        exclusive with ``backend``; the service will not shut it down.

    The cumulative counters ``jobs_submitted`` / ``jobs_executed`` /
    ``cache_hits`` / ``deduplicated`` / ``jobs_failed`` aggregate over every
    batch served by this instance.  Services owning a pooled backend should
    be closed (:meth:`close` or ``with MatchingService(...) as service:``).
    """

    def __init__(
        self,
        workers: int | None = 0,
        cache: bool | ResultCache | DiskCache | None = True,
        max_cache_entries: int = 1024,
        backend: str | ExecutionBackend | None = None,
        engine: Engine | None = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers or 0)
        if engine is not None:
            if backend is not None:
                raise TypeError("pass either engine= or backend=, not both")
            self.engine = engine
            self._owns_engine = False
        else:
            if backend is None:
                backend = "process" if self.workers else "inline"
            self.engine = Engine(backend=backend, max_workers=self.workers or None)
            self._owns_engine = True
        if cache is True:
            self.cache: ResultCache | DiskCache | None = ResultCache(max_cache_entries)
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.jobs_submitted = 0
        self.jobs_executed = 0
        self.cache_hits = 0
        self.deduplicated = 0
        self.jobs_failed = 0
        self._closed = False

    # ----------------------------------------------------------------- public
    def submit(self, job: MatchingJob) -> JobResult:
        """Execute a single job (one-element batch).

        Parameters
        ----------
        job:
            The :class:`~repro.engine.job.MatchingJob` to execute.

        Returns
        -------
        JobResult
            The job's result with its cache/worker provenance.

        Raises
        ------
        ValueError / TypeError
            As :meth:`submit_batch` — invalid jobs fail before executing.
        """
        return self.submit_batch([job]).results[0]

    def submit_batch(self, jobs: Sequence[MatchingJob]) -> BatchReport:
        """Execute ``jobs`` and return their results in submission order.

        The batch is served in three tiers: cross-batch cache hits,
        intra-batch duplicates (executed once), and genuine misses (executed
        on the engine's backend).

        Parameters
        ----------
        jobs:
            The jobs to execute.  Jobs on weighted graphs key their cache
            entries on the weights too (via
            :meth:`~repro.graph.bipartite.BipartiteGraph.content_hash`), so
            same-structure / different-weight graphs never collide.

        Returns
        -------
        BatchReport
            Per-job :class:`JobResult` objects in submission order plus the
            ``executed`` / ``cache_hits`` / ``deduplicated`` / ``failed``
            tallies and the batch wall time.

        Raises
        ------
        ValueError
            Unknown algorithm name on any job (nothing executes).
        TypeError
            Unknown keyword arguments or an inapplicable warm-start on any
            job (nothing executes).  *Runtime* failures never raise — they
            are isolated per job (``status="failed"`` with the captured
            error) while siblings complete normally.
        """
        if self._closed:
            raise RuntimeError("service is closed; create a new MatchingService to submit jobs")
        jobs = list(jobs)
        started = time.perf_counter()
        # Fail fast on malformed jobs so a bad manifest cannot waste a batch;
        # the plans are kept and shipped with each submission so backends
        # never re-resolve.
        plans = [resolve_job_plan(job) for job in jobs]

        results: list[JobResult | None] = [None] * len(jobs)
        pending: dict[tuple, list[int]] = {}
        uncacheable_keys: set[tuple] = set()
        n_cache_hits = 0
        for index, job in enumerate(jobs):
            # Non-deterministic plans (entropy-seeded heuristics without a
            # seed) draw a fresh sample per run: memoizing or deduplicating
            # them would silently replace independent samples with one.
            cacheable = self.cache is not None and plans[index].deterministic
            key = job.cache_key() if cacheable else ("uncached", index)
            if not cacheable:
                uncacheable_keys.add(key)
            hit = self.cache.get(key) if cacheable else None
            if hit is not None:
                results[index] = JobResult(job=job, result=hit, cached=True, worker="cache")
                n_cache_hits += 1
            else:
                pending.setdefault(key, []).append(index)

        representatives = [(key, indices[0]) for key, indices in pending.items()]
        handles = [
            self.engine.submit(jobs[index], plan=plans[index])
            for _, index in representatives
        ]
        for handle in handles:
            handle.wait()

        n_deduplicated = 0
        n_failed = 0
        for (key, _), handle in zip(representatives, handles, strict=True):
            ok = handle.status is JobStatus.OK
            result = handle.result() if ok else None
            if ok and self.cache is not None and key not in uncacheable_keys:
                self.cache.put(key, result)
            for position in pending[key]:
                first = position == pending[key][0]
                if not ok:
                    n_failed += 1
                results[position] = JobResult(
                    job=jobs[position],
                    # Duplicates get their own copy so sibling results never
                    # alias each other's (mutable) matching arrays.
                    result=result if first else (result.copy() if result is not None else None),
                    cached=not first and ok,
                    worker=(handle.worker or self.engine.backend.name) if first else "dedup",
                    seconds=handle.seconds if first else 0.0,
                    status="ok" if ok else handle.status.value,
                    error=handle.failure,
                )
                if not first:
                    n_deduplicated += 1

        self.jobs_submitted += len(jobs)
        self.jobs_executed += len(representatives)
        self.cache_hits += n_cache_hits
        self.deduplicated += n_deduplicated
        self.jobs_failed += n_failed
        return BatchReport(
            results=[r for r in results if r is not None],
            executed=len(representatives),
            cache_hits=n_cache_hits,
            deduplicated=n_deduplicated,
            wall_seconds=time.perf_counter() - started,
            failed=n_failed,
        )

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the service's engine (no-op for a caller-owned engine).

        Idempotent: closing twice (or re-exiting the context manager) is a
        no-op; submitting afterwards raises a plain ``RuntimeError`` instead
        of surfacing pool internals.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_engine:
            self.engine.shutdown()

    def __enter__(self) -> "MatchingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
