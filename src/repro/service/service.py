"""Batched matching service: shared dispatch pipeline, caching, worker pool.

The service is the batch execution layer over the
:func:`repro.core.api.resolve_algorithm` pipeline:

* every job is resolved into an :class:`~repro.core.api.ExecutionPlan`
  through the same path as :func:`~repro.core.api.max_bipartite_matching`,
  so batch and serial execution are bit-identical;
* results are memoized on :meth:`MatchingJob.cache_key` (graph content hash
  + algorithm + kwargs + warm-start), both across batches (via a
  :class:`~repro.service.cache.ResultCache` or persistent
  :class:`~repro.service.cache.DiskCache`) and within a batch (identical
  jobs are deduplicated and executed once);
* cache misses run either inline or across a ``multiprocessing`` pool
  (``workers > 0``), whichever the caller asked for.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Sequence

from repro.core.api import resolve_algorithm
from repro.matching import Matching, MatchingResult
from repro.seq.greedy import cheap_matching, karp_sipser_matching
from repro.service.cache import DiskCache, ResultCache
from repro.service.jobs import BatchReport, JobResult, MatchingJob

__all__ = ["MatchingService", "execute_job"]

#: Warm-start heuristic name → matching factory.
_INITIALIZERS: dict[str, Callable] = {
    "empty": Matching.empty,
    "cheap": lambda graph: cheap_matching(graph).matching,
    "karp-sipser": lambda graph: karp_sipser_matching(graph, seed=0).matching,
}


def execute_job(job: MatchingJob, plan=None) -> MatchingResult:
    """Run one job through the shared dispatch pipeline.

    This is the single execution path of the service — used both inline and
    by pool workers — and the function tests monkeypatch to count actual
    computations.  ``plan`` lets the inline path reuse the
    :class:`~repro.core.api.ExecutionPlan` already built during batch
    validation; pool workers resolve their own (plans travel as names +
    kwargs, which pickle smaller and never carry device closures).
    """
    if plan is None:
        plan = resolve_algorithm(job.algorithm, **job.kwargs)
    initial = None
    if job.initial is not None:
        initial = _INITIALIZERS[job.initial](job.graph)
    return plan.run(job.graph, initial)


def _pool_execute(payload: tuple[int, MatchingJob]) -> tuple[int, MatchingResult]:
    """Top-level pool target (must be picklable)."""
    index, job = payload
    return index, execute_job(job)


class MatchingService:
    """Executes batches of matching jobs with caching and optional parallelism.

    Parameters
    ----------
    workers:
        ``0`` / ``None`` — execute cache misses inline in this process;
        ``n > 0`` — execute them across a ``multiprocessing`` pool of ``n``
        workers (the pool is created per batch, so the service object itself
        stays picklable and state-free between calls).
    cache:
        ``True`` (default) — a fresh in-memory :class:`ResultCache`;
        ``False`` / ``None`` — no caching and no intra-batch deduplication;
        or a caller-supplied :class:`ResultCache` / :class:`DiskCache` to
        share across services or processes.

    The cumulative counters ``jobs_submitted`` / ``jobs_executed`` /
    ``cache_hits`` / ``deduplicated`` aggregate over every batch served by
    this instance.
    """

    def __init__(
        self,
        workers: int | None = 0,
        cache: bool | ResultCache | DiskCache | None = True,
        max_cache_entries: int = 1024,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers or 0)
        if cache is True:
            self.cache: ResultCache | DiskCache | None = ResultCache(max_cache_entries)
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.jobs_submitted = 0
        self.jobs_executed = 0
        self.cache_hits = 0
        self.deduplicated = 0

    # ----------------------------------------------------------------- public
    def submit(self, job: MatchingJob) -> JobResult:
        """Execute a single job (one-element batch)."""
        return self.submit_batch([job]).results[0]

    def submit_batch(self, jobs: Sequence[MatchingJob]) -> BatchReport:
        """Execute ``jobs`` and return their results in submission order.

        The batch is served in three tiers: cross-batch cache hits,
        intra-batch duplicates (executed once), and genuine misses (executed
        inline or on the worker pool).  Invalid jobs — unknown algorithm or
        keyword arguments — raise before anything executes.
        """
        jobs = list(jobs)
        started = time.perf_counter()
        # Fail fast on malformed jobs so a bad manifest cannot waste a batch;
        # the plans are kept and reused by the inline execution path.
        plans = []
        for job in jobs:
            plan = resolve_algorithm(job.algorithm, **job.kwargs)
            if job.initial is not None and not plan.spec.accepts_initial:
                raise TypeError(
                    f"algorithm {plan.algorithm!r} produces an initial matching; "
                    f"it does not accept the {job.initial!r} warm-start"
                )
            plans.append(plan)

        results: list[JobResult | None] = [None] * len(jobs)
        pending: dict[tuple, list[int]] = {}
        n_cache_hits = 0
        for index, job in enumerate(jobs):
            key = job.cache_key() if self.cache is not None else ("uncached", index)
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                results[index] = JobResult(job=job, result=hit, cached=True, worker="cache")
                n_cache_hits += 1
            else:
                pending.setdefault(key, []).append(index)

        representatives = [(key, indices[0]) for key, indices in pending.items()]
        executed = self._execute(
            [(index, jobs[index], plans[index]) for _, index in representatives]
        )

        n_deduplicated = 0
        for (key, _), (index, result, worker, seconds) in zip(representatives, executed):
            if self.cache is not None:
                self.cache.put(key, result)
            for position in pending[key]:
                first = position == index
                results[position] = JobResult(
                    job=jobs[position],
                    # Duplicates get their own copy so sibling results never
                    # alias each other's (mutable) matching arrays.
                    result=result if first else result.copy(),
                    cached=not first,
                    worker=worker if first else "cache",
                    seconds=seconds if first else 0.0,
                )
                if not first:
                    n_deduplicated += 1

        self.jobs_submitted += len(jobs)
        self.jobs_executed += len(representatives)
        self.cache_hits += n_cache_hits
        self.deduplicated += n_deduplicated
        return BatchReport(
            results=[r for r in results if r is not None],
            executed=len(representatives),
            cache_hits=n_cache_hits,
            deduplicated=n_deduplicated,
            wall_seconds=time.perf_counter() - started,
        )

    # ---------------------------------------------------------------- workers
    def _execute(
        self, payload: list[tuple[int, MatchingJob, object]]
    ) -> list[tuple[int, MatchingResult, str, float]]:
        """Run the distinct cache misses, preserving payload order."""
        if not payload:
            return []
        if self.workers and len(payload) > 1:
            started = time.perf_counter()
            processes = min(self.workers, len(payload))
            with multiprocessing.Pool(processes=processes) as pool:
                outcomes = pool.map(
                    _pool_execute, [(index, job) for index, job, _ in payload]
                )
            # Pool timing is aggregate; attribute the mean to each job.
            mean = (time.perf_counter() - started) / len(payload)
            return [(index, result, "pool", mean) for index, result in outcomes]
        outcomes = []
        for index, job, plan in payload:
            started = time.perf_counter()
            result = execute_job(job, plan)
            outcomes.append((index, result, "inline", time.perf_counter() - started))
        return outcomes
