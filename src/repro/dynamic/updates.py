"""The streaming update model: one structural change to a bipartite graph.

A :class:`GraphUpdate` is the unit both the :class:`~repro.dynamic.overlay.
DynamicBipartiteGraph` overlay and the :class:`~repro.dynamic.incremental.
IncrementalMatcher` consume, and the line format of the JSONL update traces
replayed by the CLI ``stream`` subcommand.  Six operations exist:

``insert`` / ``delete``
    Add or remove the edge ``(u, v)`` (row ``u``, column ``v``).  On a
    weighted graph, ``insert`` carries the edge's ``weight``.
``add_row`` / ``add_col``
    Grow the vertex set by one row / column (``u`` and ``v`` unused).  On a
    capacitated graph the optional ``b`` field is the arriving vertex's
    capacity (default 1).
``retire_row`` / ``retire_col``
    Vertex departure: drop every edge incident to row ``u`` / column ``v``.
    The index itself stays valid (and isolated), so all other indices in
    the trace keep their meaning.

Traces serialise one update per line, e.g.::

    {"op": "insert", "u": 3, "v": 7}
    {"op": "insert", "u": 3, "v": 8, "weight": 2.5}
    {"op": "delete", "u": 0, "v": 2}
    {"op": "add_row", "b": 3}
    {"op": "retire_col", "v": 1}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import TextIO

__all__ = [
    "UPDATE_OPS",
    "GraphUpdate",
    "parse_update",
    "read_update_trace",
    "write_update_trace",
]

#: Accepted operation names, in the order they appear in the docs.
UPDATE_OPS = ("insert", "delete", "add_row", "add_col", "retire_row", "retire_col")

_EDGE_OPS = frozenset({"insert", "delete"})
_GROW_OPS = frozenset({"add_row", "add_col"})


@dataclass(frozen=True)
class GraphUpdate:
    """One structural update to a dynamic bipartite graph.

    Attributes
    ----------
    op:
        One of :data:`UPDATE_OPS`.
    u, v:
        Row and column index for the edge operations; for ``retire_row``
        only ``u`` is used and for ``retire_col`` only ``v``; ``None`` (and
        ignored) for ``add_row`` / ``add_col``.
    weight:
        Optional edge weight for ``insert`` on a weighted graph; must be
        ``None`` for every other operation.
    b:
        Optional vertex capacity for ``add_row`` / ``add_col`` on a
        capacitated graph; must be ``None`` for every other operation.
    """

    op: str
    u: int | None = None
    v: int | None = None
    weight: float | None = None
    b: int | None = None

    def __post_init__(self) -> None:
        if self.op not in UPDATE_OPS:
            raise ValueError(f"unknown update op {self.op!r}; choose from {UPDATE_OPS}")
        if self.op in _EDGE_OPS:
            if self.u is None or self.v is None:
                raise ValueError(f"update {self.op!r} needs both 'u' and 'v'")
            object.__setattr__(self, "u", int(self.u))
            object.__setattr__(self, "v", int(self.v))
        elif self.op == "retire_row":
            if self.u is None:
                raise ValueError("update 'retire_row' needs 'u'")
            object.__setattr__(self, "u", int(self.u))
        elif self.op == "retire_col":
            if self.v is None:
                raise ValueError("update 'retire_col' needs 'v'")
            object.__setattr__(self, "v", int(self.v))
        if self.weight is not None:
            if self.op != "insert":
                raise ValueError(f"update {self.op!r} does not take a 'weight'")
            object.__setattr__(self, "weight", float(self.weight))
        if self.b is not None:
            if self.op not in _GROW_OPS:
                raise ValueError(f"update {self.op!r} does not take a capacity 'b'")
            if int(self.b) < 1:
                raise ValueError(f"update {self.op!r} capacity 'b' must be >= 1")
            object.__setattr__(self, "b", int(self.b))

    @classmethod
    def insert(cls, u: int, v: int, weight: float | None = None) -> "GraphUpdate":
        return cls("insert", u, v, weight=weight)

    @classmethod
    def delete(cls, u: int, v: int) -> "GraphUpdate":
        return cls("delete", u, v)

    @classmethod
    def add_row(cls, b: int | None = None) -> "GraphUpdate":
        return cls("add_row", b=b)

    @classmethod
    def add_col(cls, b: int | None = None) -> "GraphUpdate":
        return cls("add_col", b=b)

    @classmethod
    def retire_row(cls, u: int) -> "GraphUpdate":
        return cls("retire_row", u)

    @classmethod
    def retire_col(cls, v: int) -> "GraphUpdate":
        return cls("retire_col", None, v)

    def to_json(self) -> str:
        """This update as a compact single-line JSON object."""
        payload: dict = {"op": self.op}
        if self.op in _EDGE_OPS:
            payload["u"] = self.u
            payload["v"] = self.v
            if self.weight is not None:
                payload["weight"] = self.weight
        elif self.op == "retire_row":
            payload["u"] = self.u
        elif self.op == "retire_col":
            payload["v"] = self.v
        elif self.b is not None:
            payload["b"] = self.b
        return json.dumps(payload)


def parse_update(obj: dict, *, where: str = "update") -> GraphUpdate:
    """Build a :class:`GraphUpdate` from a decoded JSON object.

    ``where`` prefixes every error message (the trace reader passes
    ``path:lineno``) so a malformed line in a long trace is easy to find.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: expected an object, got {type(obj).__name__}")
    op = obj.get("op")
    if op not in UPDATE_OPS:
        raise ValueError(f"{where}: unknown op {op!r}; choose from {UPDATE_OPS}")
    u, v = obj.get("u"), obj.get("v")
    weight, b = obj.get("weight"), obj.get("b")
    required = ()
    if op in _EDGE_OPS:
        required = (("u", u), ("v", v))
    elif op == "retire_row":
        required = (("u", u),)
    elif op == "retire_col":
        required = (("v", v),)
    for label, value in required:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"{where}: {op!r} needs an integer {label!r}, got {value!r}")
    if weight is not None:
        if op != "insert":
            raise ValueError(f"{where}: {op!r} does not take a 'weight'")
        if not isinstance(weight, (int, float)) or isinstance(weight, bool):
            raise ValueError(f"{where}: 'weight' must be a number, got {weight!r}")
    if b is not None:
        if op not in _GROW_OPS:
            raise ValueError(f"{where}: {op!r} does not take a capacity 'b'")
        if not isinstance(b, int) or isinstance(b, bool) or b < 1:
            raise ValueError(f"{where}: 'b' must be a positive integer, got {b!r}")
    return GraphUpdate(op, u, v, weight=weight, b=b)


def read_update_trace(source: str | Path | TextIO) -> Iterator[GraphUpdate]:
    """Yield the updates of a JSONL trace (path or open text handle).

    Blank lines and ``#`` comments are skipped; malformed lines raise
    ``ValueError`` naming the offending line.
    """
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as handle:
            yield from _read_lines(handle, str(source))
    else:
        yield from _read_lines(source, getattr(source, "name", "<trace>"))


def _read_lines(handle: TextIO, label: str) -> Iterator[GraphUpdate]:
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{label}:{lineno}: invalid JSON: {exc}") from exc
        yield parse_update(obj, where=f"{label}:{lineno}")


def write_update_trace(updates: Iterable[GraphUpdate], path: str | Path) -> int:
    """Write ``updates`` as a JSONL trace; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for update in updates:
            handle.write(update.to_json() + "\n")
            count += 1
    return count
