"""Dynamic-graph subsystem: streaming updates over the frozen CSR graph.

Three pieces:

* :class:`~repro.dynamic.updates.GraphUpdate` — the unit of change
  (``insert`` / ``delete`` edge, ``add_row`` / ``add_col``), with JSONL
  trace readers/writers for the CLI ``stream`` subcommand.
* :class:`~repro.dynamic.overlay.DynamicBipartiteGraph` — a mutable overlay
  over an immutable :class:`~repro.graph.bipartite.BipartiteGraph`, with
  periodic compaction back into a frozen snapshot so the algorithm
  registry, ``content_hash()`` and the result caches keep working.
* :class:`~repro.dynamic.incremental.IncrementalMatcher` — repairs a
  maximum matching per update (targeted augmenting-path searches) and
  delegates large batches to any registered
  :class:`~repro.core.api.ExecutionPlan` with the surviving matching as
  warm start.
"""

from repro.dynamic.incremental import IncrementalMatcher
from repro.dynamic.overlay import DynamicBipartiteGraph
from repro.dynamic.updates import (
    UPDATE_OPS,
    GraphUpdate,
    parse_update,
    read_update_trace,
    write_update_trace,
)

__all__ = [
    "UPDATE_OPS",
    "DynamicBipartiteGraph",
    "GraphUpdate",
    "IncrementalMatcher",
    "parse_update",
    "read_update_trace",
    "write_update_trace",
]
