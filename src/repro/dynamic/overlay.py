"""A mutable overlay over the frozen dual-CSR :class:`BipartiteGraph`.

Every algorithm, the result caches and :meth:`BipartiteGraph.content_hash`
assume an *immutable* CSR structure, and the paper's kernels depend on that
immutability for correctness.  Streaming workloads instead mutate the edge
set continuously.  :class:`DynamicBipartiteGraph` reconciles the two: it
keeps a frozen base snapshot plus small per-vertex overlays of inserted and
deleted edges, answers adjacency queries through the merged view, and
periodically *compacts* the overlay back into a fresh immutable snapshot —
so the whole existing algorithm registry keeps working unchanged on the
snapshots while updates stream in.

The overlay is deliberately simple: sets keyed by vertex on both sides (the
same dual-indexing idea as the base graph's two CSR structures), sized by
the churn since the last compaction, not by the graph.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges
from repro.dynamic.updates import GraphUpdate

__all__ = ["DynamicBipartiteGraph"]


class DynamicBipartiteGraph:
    """A bipartite graph supporting edge insertion/deletion and vertex growth.

    Parameters
    ----------
    base:
        The starting frozen snapshot.  The overlay never mutates it.

    Notes
    -----
    ``snapshot()`` returns an equivalent immutable
    :class:`~repro.graph.bipartite.BipartiteGraph` (cached until the next
    mutation); ``compact()`` additionally adopts that snapshot as the new
    base, emptying the overlay.  Row/column indices gained through
    ``add_row()`` / ``add_col()`` extend the index space at the end, so all
    existing indices stay valid.
    """

    def __init__(self, base: BipartiteGraph) -> None:
        if base.has_weights:
            raise ValueError(
                "DynamicBipartiteGraph does not support weighted graphs yet: "
                "compaction would silently drop the edge weights.  Strip them "
                "with graph.with_weights(None) first."
            )
        self._base = base
        self._n_rows = base.n_rows
        self._n_cols = base.n_cols
        # Inserted edges (absent from the base) and deleted base edges, each
        # indexed from both sides for O(overlay) adjacency merges.
        self._added_by_row: dict[int, set[int]] = {}
        self._added_by_col: dict[int, set[int]] = {}
        self._deleted_by_row: dict[int, set[int]] = {}
        self._deleted_by_col: dict[int, set[int]] = {}
        self._n_added = 0
        self._n_deleted = 0
        self._snapshot: BipartiteGraph | None = base

    # ------------------------------------------------------------ properties
    @property
    def base(self) -> BipartiteGraph:
        """The frozen snapshot the overlay is relative to."""
        return self._base

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return self._n_cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n_rows, self._n_cols)

    @property
    def n_edges(self) -> int:
        return self._base.n_edges + self._n_added - self._n_deleted

    @property
    def name(self) -> str:
        return self._base.name

    @property
    def overlay_size(self) -> int:
        """Pending churn: inserted + deleted edges plus vertex growth since the base."""
        return (
            self._n_added
            + self._n_deleted
            + (self._n_rows - self._base.n_rows)
            + (self._n_cols - self._base.n_cols)
        )

    # ------------------------------------------------------------- accessors
    def _check_row(self, u: int) -> int:
        u = int(u)
        if not 0 <= u < self._n_rows:
            raise IndexError(f"row index {u} out of range [0, {self._n_rows})")
        return u

    def _check_col(self, v: int) -> int:
        v = int(v)
        if not 0 <= v < self._n_cols:
            raise IndexError(f"column index {v} out of range [0, {self._n_cols})")
        return v

    def has_edge(self, u: int, v: int) -> bool:
        """Whether row ``u`` and column ``v`` are adjacent in the merged view."""
        u, v = self._check_row(u), self._check_col(v)
        if v in self._added_by_row.get(u, ()):
            return True
        if v in self._deleted_by_row.get(u, ()):
            return False
        if u >= self._base.n_rows or v >= self._base.n_cols:
            return False
        return self._base.has_edge(u, v)

    def row_neighbors(self, u: int) -> np.ndarray:
        """Columns adjacent to row ``u`` (sorted), through the overlay."""
        u = self._check_row(u)
        base = self._base.row_neighbors(u) if u < self._base.n_rows else ()
        return self._merge(base, self._added_by_row.get(u), self._deleted_by_row.get(u))

    def column_neighbors(self, v: int) -> np.ndarray:
        """Rows adjacent to column ``v`` (sorted), through the overlay."""
        v = self._check_col(v)
        base = self._base.column_neighbors(v) if v < self._base.n_cols else ()
        return self._merge(base, self._added_by_col.get(v), self._deleted_by_col.get(v))

    @staticmethod
    def _merge(base, added: set[int] | None, deleted: set[int] | None) -> np.ndarray:
        if not added and not deleted:
            return np.asarray(base, dtype=np.int64)
        merged = set(int(x) for x in base)
        if deleted:
            merged -= deleted
        if added:
            merged |= added
        return np.fromiter(sorted(merged), dtype=np.int64, count=len(merged))

    # ------------------------------------------------------------- mutations
    def insert_edge(self, u: int, v: int) -> bool:
        """Add edge ``(u, v)``; returns whether the graph changed."""
        u, v = self._check_row(u), self._check_col(v)
        if v in self._deleted_by_row.get(u, ()):
            # Resurrect a deleted base edge: drop the tombstone.
            self._deleted_by_row[u].discard(v)
            self._deleted_by_col[v].discard(u)
            self._n_deleted -= 1
            self._snapshot = None
            return True
        if self.has_edge(u, v):
            return False
        self._added_by_row.setdefault(u, set()).add(v)
        self._added_by_col.setdefault(v, set()).add(u)
        self._n_added += 1
        self._snapshot = None
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Remove edge ``(u, v)``; returns whether the graph changed."""
        u, v = self._check_row(u), self._check_col(v)
        if v in self._added_by_row.get(u, ()):
            self._added_by_row[u].discard(v)
            self._added_by_col[v].discard(u)
            self._n_added -= 1
            self._snapshot = None
            return True
        if not self.has_edge(u, v):
            return False
        self._deleted_by_row.setdefault(u, set()).add(v)
        self._deleted_by_col.setdefault(v, set()).add(u)
        self._n_deleted += 1
        self._snapshot = None
        return True

    def add_row(self) -> int:
        """Append one row vertex; returns its index."""
        self._n_rows += 1
        self._snapshot = None
        return self._n_rows - 1

    def add_col(self) -> int:
        """Append one column vertex; returns its index."""
        self._n_cols += 1
        self._snapshot = None
        return self._n_cols - 1

    def apply(self, update: GraphUpdate) -> bool:
        """Apply one :class:`GraphUpdate`; returns whether the graph changed."""
        if update.op == "insert":
            return self.insert_edge(update.u, update.v)
        if update.op == "delete":
            return self.delete_edge(update.u, update.v)
        if update.op == "add_row":
            self.add_row()
            return True
        self.add_col()
        return True

    # ------------------------------------------------------------ compaction
    def snapshot(self, name: str | None = None) -> BipartiteGraph:
        """The current graph as an immutable :class:`BipartiteGraph`.

        Cached between mutations, so repeated calls (and the result caches
        keyed on the snapshot's ``content_hash()``) cost nothing while the
        graph is quiescent.
        """
        if self._snapshot is not None and name is None:
            return self._snapshot
        edges = self._edge_array()
        snap = from_edges(
            edges,
            n_rows=self._n_rows,
            n_cols=self._n_cols,
            name=self._base.name if name is None else name,
        )
        if name is None:
            self._snapshot = snap
        return snap

    def compact(self) -> BipartiteGraph:
        """Fold the overlay into a fresh immutable base; returns the new base."""
        snap = self.snapshot()
        self._base = snap
        self._added_by_row.clear()
        self._added_by_col.clear()
        self._deleted_by_row.clear()
        self._deleted_by_col.clear()
        self._n_added = 0
        self._n_deleted = 0
        return snap

    def _edge_array(self) -> np.ndarray:
        base_edges = self._base.edges()
        if self._n_deleted:
            # Vectorized filter: encode (u, v) as u * n_cols + v and mask the
            # (small) deleted set out, instead of a per-edge Python loop.
            deleted = np.array(
                [(u, v) for u, vs in self._deleted_by_row.items() for v in vs],
                dtype=np.int64,
            ).reshape(-1, 2)
            keys = base_edges[:, 0] * self._n_cols + base_edges[:, 1]
            deleted_keys = deleted[:, 0] * self._n_cols + deleted[:, 1]
            base_edges = base_edges[~np.isin(keys, deleted_keys)]
        if not self._n_added:
            return base_edges
        added = np.array(
            [(u, v) for u, vs in self._added_by_row.items() for v in vs],
            dtype=np.int64,
        ).reshape(-1, 2)
        return np.concatenate([base_edges, added], axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicBipartiteGraph(name={self.name!r}, n_rows={self._n_rows}, "
            f"n_cols={self._n_cols}, n_edges={self.n_edges}, overlay={self.overlay_size})"
        )
