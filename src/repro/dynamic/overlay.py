"""A mutable overlay over the frozen dual-CSR :class:`BipartiteGraph`.

Every algorithm, the result caches and :meth:`BipartiteGraph.content_hash`
assume an *immutable* CSR structure, and the paper's kernels depend on that
immutability for correctness.  Streaming workloads instead mutate the edge
set continuously.  :class:`DynamicBipartiteGraph` reconciles the two: it
keeps a frozen base snapshot plus small per-vertex overlays of inserted and
deleted edges, answers adjacency queries through the merged view, and
periodically *compacts* the overlay back into a fresh immutable snapshot —
so the whole existing algorithm registry keeps working unchanged on the
snapshots while updates stream in.

The overlay is deliberately simple: sets keyed by vertex on both sides (the
same dual-indexing idea as the base graph's two CSR structures), sized by
the churn since the last compaction, not by the graph.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.builders import from_edges
from repro.dynamic.updates import GraphUpdate

__all__ = ["DynamicBipartiteGraph"]


class DynamicBipartiteGraph:
    """A bipartite graph supporting edge insertion/deletion and vertex growth.

    Parameters
    ----------
    base:
        The starting frozen snapshot.  The overlay never mutates it.

    Notes
    -----
    ``snapshot()`` returns an equivalent immutable
    :class:`~repro.graph.bipartite.BipartiteGraph` (cached until the next
    mutation); ``compact()`` additionally adopts that snapshot as the new
    base, emptying the overlay.  Row/column indices gained through
    ``add_row()`` / ``add_col()`` extend the index space at the end, so all
    existing indices stay valid; ``retire_row()`` / ``retire_col()`` model
    vertex departure by dropping the incident edges while keeping the index
    valid (and isolated).  Edge weights and per-vertex b-matching
    capacities on the base survive snapshots and compaction: insertions on
    a weighted base carry their weight, arrivals on a capacitated base
    carry their capacity.
    """

    def __init__(self, base: BipartiteGraph) -> None:
        self._base = base
        self._n_rows = base.n_rows
        self._n_cols = base.n_cols
        # Inserted edges (absent from the base) and deleted base edges, each
        # indexed from both sides for O(overlay) adjacency merges.
        self._added_by_row: dict[int, set[int]] = {}
        self._added_by_col: dict[int, set[int]] = {}
        self._deleted_by_row: dict[int, set[int]] = {}
        self._deleted_by_col: dict[int, set[int]] = {}
        # Weight of every inserted edge, keyed (u, v); only on weighted bases.
        self._added_weights: dict[tuple[int, int], float] = {}
        # Per-vertex capacities as growable lists; None on uncapacitated bases.
        self._b_row: list[int] | None = (
            base.b_row.tolist() if base.has_capacities else None
        )
        self._b_col: list[int] | None = (
            base.b_col.tolist() if base.has_capacities else None
        )
        self._n_added = 0
        self._n_deleted = 0
        self._snapshot: BipartiteGraph | None = base

    # ------------------------------------------------------------ properties
    @property
    def base(self) -> BipartiteGraph:
        """The frozen snapshot the overlay is relative to."""
        return self._base

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_cols(self) -> int:
        return self._n_cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n_rows, self._n_cols)

    @property
    def n_edges(self) -> int:
        return self._base.n_edges + self._n_added - self._n_deleted

    @property
    def name(self) -> str:
        return self._base.name

    @property
    def has_weights(self) -> bool:
        """Whether the graph carries edge weights (decided by the base)."""
        return self._base.has_weights

    @property
    def has_capacities(self) -> bool:
        """Whether the graph carries per-vertex b-matching capacities."""
        return self._b_row is not None

    @property
    def overlay_size(self) -> int:
        """Pending churn: inserted + deleted edges plus vertex growth since the base."""
        return (
            self._n_added
            + self._n_deleted
            + (self._n_rows - self._base.n_rows)
            + (self._n_cols - self._base.n_cols)
        )

    # ------------------------------------------------------------- accessors
    def _check_row(self, u: int) -> int:
        u = int(u)
        if not 0 <= u < self._n_rows:
            raise IndexError(f"row index {u} out of range [0, {self._n_rows})")
        return u

    def _check_col(self, v: int) -> int:
        v = int(v)
        if not 0 <= v < self._n_cols:
            raise IndexError(f"column index {v} out of range [0, {self._n_cols})")
        return v

    def has_edge(self, u: int, v: int) -> bool:
        """Whether row ``u`` and column ``v`` are adjacent in the merged view."""
        u, v = self._check_row(u), self._check_col(v)
        if v in self._added_by_row.get(u, ()):
            return True
        if v in self._deleted_by_row.get(u, ()):
            return False
        if u >= self._base.n_rows or v >= self._base.n_cols:
            return False
        return self._base.has_edge(u, v)

    def row_neighbors(self, u: int) -> np.ndarray:
        """Columns adjacent to row ``u`` (sorted), through the overlay."""
        u = self._check_row(u)
        base = self._base.row_neighbors(u) if u < self._base.n_rows else ()
        return self._merge(base, self._added_by_row.get(u), self._deleted_by_row.get(u))

    def column_neighbors(self, v: int) -> np.ndarray:
        """Rows adjacent to column ``v`` (sorted), through the overlay."""
        v = self._check_col(v)
        base = self._base.column_neighbors(v) if v < self._base.n_cols else ()
        return self._merge(base, self._added_by_col.get(v), self._deleted_by_col.get(v))

    @staticmethod
    def _merge(base, added: set[int] | None, deleted: set[int] | None) -> np.ndarray:
        if not added and not deleted:
            return np.asarray(base, dtype=np.int64)
        merged = set(int(x) for x in base)
        if deleted:
            merged -= deleted
        if added:
            merged |= added
        return np.fromiter(sorted(merged), dtype=np.int64, count=len(merged))

    # ------------------------------------------------------------- mutations
    def insert_edge(self, u: int, v: int, weight: float | None = None) -> bool:
        """Add edge ``(u, v)``; returns whether the graph changed.

        On a weighted graph every insertion must carry a ``weight``; on an
        unweighted graph passing one is an error (it would be silently
        meaningless otherwise).  Inserting an edge that already exists is a
        no-op — the existing weight is kept.
        """
        u, v = self._check_row(u), self._check_col(v)
        weighted = self._base.has_weights
        if weighted and weight is None:
            raise ValueError(
                f"insert_edge({u}, {v}) on weighted graph {self.name!r} "
                "needs a weight"
            )
        if not weighted and weight is not None:
            raise ValueError(
                f"insert_edge({u}, {v}, weight={weight!r}): graph "
                f"{self.name!r} carries no edge weights"
            )
        if v in self._added_by_row.get(u, ()):
            return False
        if v in self._deleted_by_row.get(u, ()):
            if not weighted:
                # Resurrect a deleted base edge: drop the tombstone.
                self._deleted_by_row[u].discard(v)
                self._deleted_by_col[v].discard(u)
                self._n_deleted -= 1
                self._snapshot = None
                return True
            # Weighted resurrection keeps the tombstone and records the edge
            # as inserted, so the *new* weight wins over the base weight.
        elif self.has_edge(u, v):
            return False
        self._added_by_row.setdefault(u, set()).add(v)
        self._added_by_col.setdefault(v, set()).add(u)
        if weighted:
            self._added_weights[(u, v)] = float(weight)
        self._n_added += 1
        self._snapshot = None
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Remove edge ``(u, v)``; returns whether the graph changed."""
        u, v = self._check_row(u), self._check_col(v)
        if v in self._added_by_row.get(u, ()):
            self._added_by_row[u].discard(v)
            self._added_by_col[v].discard(u)
            self._added_weights.pop((u, v), None)
            self._n_added -= 1
            self._snapshot = None
            return True
        if not self.has_edge(u, v):
            return False
        self._deleted_by_row.setdefault(u, set()).add(v)
        self._deleted_by_col.setdefault(v, set()).add(u)
        self._n_deleted += 1
        self._snapshot = None
        return True

    def add_row(self, b: int | None = None) -> int:
        """Append one row vertex (arrival); returns its index.

        On a capacitated graph ``b`` is the new vertex's capacity (default
        1); on an uncapacitated graph passing ``b`` is an error.
        """
        if b is not None and self._b_row is None:
            raise ValueError(
                f"add_row(b={b!r}): graph {self.name!r} carries no vertex "
                "capacities"
            )
        self._n_rows += 1
        if self._b_row is not None:
            self._b_row.append(1 if b is None else int(b))
        self._snapshot = None
        return self._n_rows - 1

    def add_col(self, b: int | None = None) -> int:
        """Append one column vertex (arrival); returns its index."""
        if b is not None and self._b_col is None:
            raise ValueError(
                f"add_col(b={b!r}): graph {self.name!r} carries no vertex "
                "capacities"
            )
        self._n_cols += 1
        if self._b_col is not None:
            self._b_col.append(1 if b is None else int(b))
        self._snapshot = None
        return self._n_cols - 1

    def retire_row(self, u: int) -> bool:
        """Vertex departure: drop every edge incident to row ``u``.

        The index stays valid (and isolated) so other indices keep their
        meaning; returns whether any edge was removed.
        """
        u = self._check_row(u)
        changed = False
        for v in self.row_neighbors(u).tolist():
            changed |= self.delete_edge(u, int(v))
        return changed

    def retire_col(self, v: int) -> bool:
        """Vertex departure: drop every edge incident to column ``v``."""
        v = self._check_col(v)
        changed = False
        for u in self.column_neighbors(v).tolist():
            changed |= self.delete_edge(int(u), v)
        return changed

    def apply(self, update: GraphUpdate) -> bool:
        """Apply one :class:`GraphUpdate`; returns whether the graph changed."""
        if update.op == "insert":
            return self.insert_edge(update.u, update.v, update.weight)
        if update.op == "delete":
            return self.delete_edge(update.u, update.v)
        if update.op == "retire_row":
            return self.retire_row(update.u)
        if update.op == "retire_col":
            return self.retire_col(update.v)
        if update.op == "add_row":
            self.add_row(update.b)
            return True
        self.add_col(update.b)
        return True

    # ------------------------------------------------------------ compaction
    def snapshot(self, name: str | None = None) -> BipartiteGraph:
        """The current graph as an immutable :class:`BipartiteGraph`.

        Cached between mutations, so repeated calls (and the result caches
        keyed on the snapshot's ``content_hash()``) cost nothing while the
        graph is quiescent.
        """
        if self._snapshot is not None and name is None:
            return self._snapshot
        edges, weights = self._edge_array()
        snap = from_edges(
            edges,
            n_rows=self._n_rows,
            n_cols=self._n_cols,
            name=self._base.name if name is None else name,
            weights=weights,
        )
        if self._b_row is not None:
            snap = snap.with_capacities(self._b_row, self._b_col)
        if name is None:
            self._snapshot = snap
        return snap

    def compact(self) -> BipartiteGraph:
        """Fold the overlay into a fresh immutable base; returns the new base."""
        snap = self.snapshot()
        self._base = snap
        self._added_by_row.clear()
        self._added_by_col.clear()
        self._deleted_by_row.clear()
        self._deleted_by_col.clear()
        self._added_weights.clear()
        self._n_added = 0
        self._n_deleted = 0
        return snap

    def _edge_array(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The merged edge list, plus parallel weights on a weighted base."""
        weighted = self._base.has_weights
        base_edges = self._base.edges()
        base_weights = self._base.weights if weighted else None
        if self._n_deleted:
            # Vectorized filter: encode (u, v) as u * n_cols + v and mask the
            # (small) deleted set out, instead of a per-edge Python loop.
            deleted = np.array(
                [(u, v) for u, vs in self._deleted_by_row.items() for v in vs],
                dtype=np.int64,
            ).reshape(-1, 2)
            keys = base_edges[:, 0] * self._n_cols + base_edges[:, 1]
            deleted_keys = deleted[:, 0] * self._n_cols + deleted[:, 1]
            keep = ~np.isin(keys, deleted_keys)
            base_edges = base_edges[keep]
            if weighted:
                base_weights = base_weights[keep]
        if not self._n_added:
            return base_edges, base_weights
        added_pairs = [(u, v) for u, vs in self._added_by_row.items() for v in vs]
        added = np.array(added_pairs, dtype=np.int64).reshape(-1, 2)
        edges = np.concatenate([base_edges, added], axis=0)
        if not weighted:
            return edges, None
        added_weights = np.array(
            [self._added_weights[pair] for pair in added_pairs], dtype=np.float64
        )
        return edges, np.concatenate([base_weights, added_weights])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicBipartiteGraph(name={self.name!r}, n_rows={self._n_rows}, "
            f"n_cols={self._n_cols}, n_edges={self.n_edges}, overlay={self.overlay_size})"
        )
