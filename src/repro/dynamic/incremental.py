"""Incremental maximum-matching repair under streaming graph updates.

Every algorithm in the registry is run from a warm start (the paper's cheap
matching); :class:`IncrementalMatcher` pushes that idea to its limit for
*dynamic* graphs.  Instead of recomputing from scratch after each update, it
repairs the previous maximum matching:

* **Edge insertion** increases the maximum cardinality by at most one, and
  only via an augmenting path through the new edge — so at most one
  augmenting-path search runs, rooted at the newly coverable side.  When
  both endpoints are already matched, any augmenting path must still
  traverse the new edge, and one shared-visited Kuhn sweep from the free
  columns decides it (the visited marks stay valid across sources because
  no augmentation happens in between).
* **Deleting a matched edge** frees its two endpoints; any augmenting path
  for the weakened matching must start at one of them (a path between two
  previously-free vertices would have existed before the deletion, contra
  maximality), so at most two targeted searches re-augment.
* **Deleting an unmatched edge** (and adding an isolated vertex) cannot
  change the maximum cardinality — those updates are free.
* **Vertex departure** (``retire_row`` / ``retire_col``) is a bounded
  sequence of edge deletions, at most one of them matched.

Past a configurable batch size, per-update repair loses to batch recompute,
so :meth:`apply` compacts the overlay and delegates to any registered
:class:`~repro.core.api.ExecutionPlan` with the surviving matching as warm
start — the whole algorithm registry (``g-pr``, ``pr``, ``hk``, ``p-dbfs``,
...) becomes a repair backend for free.

Weighted and capacitated plans (``weighted-sap``, ``b-aug``, ...) run in a
*delegated-only* mode: the cardinality repairs above cannot preserve their
stronger invariants, so every batch recomputes through the plan — with the
surviving matching as warm start when the plan accepts one, and with pure
vertex arrivals short-circuited (an isolated vertex never changes the
optimum).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.capacity.matching import CapacitatedMatching
from repro.core.api import ExecutionPlan, resolve_algorithm
from repro.dynamic.overlay import DynamicBipartiteGraph
from repro.dynamic.updates import GraphUpdate
from repro.graph.bipartite import BipartiteGraph
from repro.matching import UNMATCHED, Matching, MatchingResult

__all__ = ["IncrementalMatcher"]

#: ``recompute(graph, initial) -> MatchingResult`` — how batched repairs run.
RecomputeFn = Callable[[BipartiteGraph, Matching | None], MatchingResult]


class IncrementalMatcher:
    """Maintains a maximum-cardinality matching of a changing bipartite graph.

    Parameters
    ----------
    graph:
        The starting graph — a frozen :class:`BipartiteGraph` (wrapped in a
        fresh overlay) or an existing :class:`DynamicBipartiteGraph`.
    initial:
        Optional warm-start matching for the initial solve; shapes are
        validated with :meth:`Matching.check_compatible`.
    plan:
        The batch-repair backend: an algorithm name or a resolved
        :class:`ExecutionPlan`.  Must be a maximum algorithm; cardinality
        plans must also accept a warm start, while weighted / capacitated
        plans (which run delegated-only) need not.  Weighted graphs require
        a weighted plan and capacitated graphs a capacitated plan.  Default
        ``"hk"``.
    batch_threshold:
        :meth:`apply` batches of at least this many updates compact the
        overlay and delegate to ``plan`` instead of repairing per update.
    recompute:
        Override for how delegated recomputes execute — the CLI ``stream``
        subcommand routes them through an :class:`~repro.engine.Engine`
        here.  Defaults to ``plan.run``.

    Invariant: after construction and after every applied update, the held
    matching is a *maximum* matching of the current graph.
    """

    def __init__(
        self,
        graph: BipartiteGraph | DynamicBipartiteGraph,
        *,
        initial: Matching | None = None,
        plan: str | ExecutionPlan = "hk",
        batch_threshold: int = 64,
        recompute: RecomputeFn | None = None,
    ) -> None:
        if isinstance(graph, BipartiteGraph):
            graph = DynamicBipartiteGraph(graph)
        self.graph = graph
        if isinstance(plan, str):
            plan = resolve_algorithm(plan)
        if not plan.spec.maximum:
            raise ValueError(
                f"plan algorithm {plan.algorithm!r} is a heuristic; incremental repair "
                "needs a maximum algorithm as its batch backend"
            )
        snapshot = self.graph.snapshot()
        if snapshot.has_weights and not plan.spec.weighted:
            raise ValueError(
                f"graph {snapshot.name!r} carries edge weights that plan "
                f"algorithm {plan.algorithm!r} would silently ignore; pick a "
                "weighted plan (e.g. 'weighted-sap', 'weighted-auction', "
                "'b-auction') or strip the weights with "
                "graph.with_weights(None)"
            )
        if snapshot.has_capacities and not plan.spec.capacitated:
            raise ValueError(
                f"graph {snapshot.name!r} carries vertex capacities that plan "
                f"algorithm {plan.algorithm!r} would silently ignore; pick a "
                "capacitated plan (e.g. 'b-aug', 'b-expand', 'b-auction') or "
                "strip them with graph.with_capacities(None, None)"
            )
        # Weighted and capacitated plans maintain their invariant (optimal
        # weight / b-matching) that the per-update cardinality repairs
        # cannot preserve, so every batch recomputes through the delegate.
        self._delegated_only = plan.spec.weighted or plan.spec.capacitated
        if not plan.spec.accepts_initial:
            if not self._delegated_only:
                raise ValueError(
                    f"plan algorithm {plan.algorithm!r} does not accept a warm start"
                )
            if initial is not None:
                raise ValueError(
                    f"plan algorithm {plan.algorithm!r} does not accept a "
                    "warm start; drop the initial matching"
                )
        if batch_threshold < 1:
            raise ValueError("batch_threshold must be at least 1")
        self.plan = plan
        self.batch_threshold = int(batch_threshold)
        self._recompute_fn = recompute
        self.counters: dict[str, int] = {
            "updates_applied": 0,
            "edges_scanned": 0,
            "searches": 0,
            "augmentations": 0,
            "recomputes": 0,
            "delegate_edges_scanned": 0,
            "initial_edges_scanned": 0,
        }

        if initial is not None:
            initial.check_compatible(snapshot, context="initial matching")
            initial = initial.canonical()
        result = self._run_delegate(snapshot, initial)
        if self._delegated_only:
            self._matching_obj = result.matching.copy()
            self._row_match = self._col_match = None
        else:
            self._matching_obj = None
            self._row_match = result.matching.row_match.copy()
            self._col_match = result.matching.col_match.copy()
        self.counters["initial_edges_scanned"] = int(
            result.counters.get("edges_scanned", 0)
        )

    # ------------------------------------------------------------ properties
    @property
    def matching(self) -> Matching | CapacitatedMatching:
        """A copy of the current matching.

        A :class:`Matching` for cardinality plans; weighted / capacitated
        plans return whatever container their delegate produced (a
        :class:`CapacitatedMatching` for the b-matching solvers).
        """
        if self._delegated_only:
            return self._matching_obj.copy()
        return Matching(self._row_match.copy(), self._col_match.copy())

    @property
    def cardinality(self) -> int:
        if self._delegated_only:
            return int(self._matching_obj.cardinality)
        return int(np.count_nonzero(self._row_match >= 0))

    # --------------------------------------------------------------- updates
    def apply(self, updates: Iterable[GraphUpdate]) -> dict:
        """Apply a batch of updates, repairing the matching.

        Batches of at least ``batch_threshold`` updates compact the overlay
        and delegate to the registered plan with the surviving matching as
        warm start; smaller batches repair per update.

        Weighted and capacitated plans are *delegated-only*: their invariant
        (optimal weight / maximum b-matching) cannot be preserved by the
        per-update cardinality repairs, so every batch — regardless of size
        — compacts and recomputes through the plan (pure vertex arrivals
        skip the recompute; an isolated vertex cannot change the optimum).

        Parameters
        ----------
        updates:
            :class:`~repro.dynamic.updates.GraphUpdate` objects (any op in
            :data:`~repro.dynamic.updates.UPDATE_OPS`), applied in order.

        Returns
        -------
        dict
            Summary with ``"applied"`` (update count), ``"mode"``
            (``"incremental"`` or ``"delegated"``) and ``"cardinality"``
            (the matching cardinality after the batch).

        Raises
        ------
        IndexError
            An update referencing a vertex outside the current shape.
        repro.engine.handles.JobError
            A delegated recompute failing on the engine backend (only when
            ``recompute`` routes through an :class:`~repro.engine.Engine`).
        """
        updates = list(updates)
        if self._delegated_only:
            if not updates:
                return {
                    "applied": 0,
                    "mode": "delegated",
                    "cardinality": self.cardinality,
                    "changed": 0,
                }
            return self._apply_recompute(updates)
        if len(updates) >= self.batch_threshold:
            return self._apply_delegated(updates)
        for update in updates:
            self.apply_update(update)
        return {
            "applied": len(updates),
            "mode": "incremental",
            "cardinality": self.cardinality,
        }

    def apply_update(self, update: GraphUpdate) -> bool:
        """Apply one update incrementally; returns whether the graph changed."""
        if self._delegated_only:
            return bool(self._apply_recompute([update])["changed"])
        self.counters["updates_applied"] += 1
        if update.op == "insert":
            return self.insert_edge(update.u, update.v, weight=update.weight)
        if update.op == "delete":
            return self.delete_edge(update.u, update.v)
        if update.op == "retire_row":
            return self.retire_row(update.u)
        if update.op == "retire_col":
            return self.retire_col(update.v)
        if update.op == "add_row":
            self.add_row(b=update.b)
        else:
            self.add_col(b=update.b)
        return True

    def insert_edge(self, u: int, v: int, weight: float | None = None) -> bool:
        """Insert edge ``(u, v)`` and repair; at most one augmenting search."""
        if self._delegated_only:
            update = GraphUpdate.insert(u, v, weight=weight)
            return bool(self._apply_recompute([update])["changed"])
        if not self.graph.insert_edge(u, v, weight):
            return False
        row_free = self._row_match[u] < 0
        col_free = self._col_match[v] < 0
        if row_free and col_free:
            self._row_match[u] = v
            self._col_match[v] = u
            self.counters["augmentations"] += 1
        elif col_free:
            # Any augmenting path using (u, v) must start at the free column v.
            self._augment_from_col(int(v))
        elif row_free:
            # Symmetrically, it must end at the free row u — search from u.
            self._augment_from_row(int(u))
        else:
            # Both matched: an augmenting path, if any, still runs through the
            # new edge, entered from some free column.  One shared-visited
            # sweep over the free columns decides it.
            if np.any(self._row_match < 0) and np.any(self._col_match < 0):
                self._augment_any()
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete edge ``(u, v)``; targeted re-augmentation if it was matched."""
        if self._delegated_only:
            update = GraphUpdate.delete(u, v)
            return bool(self._apply_recompute([update])["changed"])
        if not self.graph.delete_edge(u, v):
            return False
        if self._row_match[u] == v:
            self._row_match[u] = UNMATCHED
            self._col_match[v] = UNMATCHED
            # Any augmenting path for the weakened matching starts at one of
            # the two freed endpoints (see module docstring).
            if not self._augment_from_col(int(v)):
                self._augment_from_row(int(u))
        return True

    def retire_row(self, u: int) -> bool:
        """Vertex departure: drop every edge of row ``u``, repairing each.

        At most one of the dropped edges was matched, so this costs the same
        bounded repair as the individual deletions (the index stays valid
        and isolated — see :mod:`repro.dynamic.updates`).
        """
        if self._delegated_only:
            update = GraphUpdate.retire_row(u)
            return bool(self._apply_recompute([update])["changed"])
        changed = False
        for v in self.graph.row_neighbors(u).tolist():
            changed = self.delete_edge(u, int(v)) or changed
        return changed

    def retire_col(self, v: int) -> bool:
        """Mirror of :meth:`retire_row` for a column vertex."""
        if self._delegated_only:
            update = GraphUpdate.retire_col(v)
            return bool(self._apply_recompute([update])["changed"])
        changed = False
        for u in self.graph.column_neighbors(v).tolist():
            changed = self.delete_edge(int(u), v) or changed
        return changed

    def add_row(self, b: int | None = None) -> int:
        """Append a row vertex; the matching is untouched (it starts isolated).

        ``b`` is the arriving vertex's capacity on a capacitated graph
        (default 1; rejected by the overlay otherwise).
        """
        index = self.graph.add_row(b)
        if self._delegated_only:
            self._grow_matching()
        else:
            self._row_match = np.append(self._row_match, UNMATCHED)
        return index

    def add_col(self, b: int | None = None) -> int:
        """Append a column vertex; the matching is untouched."""
        index = self.graph.add_col(b)
        if self._delegated_only:
            self._grow_matching()
        else:
            self._col_match = np.append(self._col_match, UNMATCHED)
        return index

    # ---------------------------------------------------------- batch repair
    def _apply_delegated(self, updates: list[GraphUpdate]) -> dict:
        for update in updates:
            self.counters["updates_applied"] += 1
            if not self.graph.apply(update):
                continue
            # Matching bookkeeping only; the one augmenting run happens below.
            if update.op == "delete" and self._row_match[update.u] == update.v:
                self._row_match[update.u] = UNMATCHED
                self._col_match[update.v] = UNMATCHED
            elif update.op == "retire_row" and self._row_match[update.u] >= 0:
                self._col_match[self._row_match[update.u]] = UNMATCHED
                self._row_match[update.u] = UNMATCHED
            elif update.op == "retire_col" and self._col_match[update.v] >= 0:
                self._row_match[self._col_match[update.v]] = UNMATCHED
                self._col_match[update.v] = UNMATCHED
            elif update.op == "add_row":
                self._row_match = np.append(self._row_match, UNMATCHED)
            elif update.op == "add_col":
                self._col_match = np.append(self._col_match, UNMATCHED)
        snapshot = self.graph.compact()
        survivor = Matching(self._row_match.copy(), self._col_match.copy()).canonical()
        survivor.check_compatible(snapshot, context="surviving warm-start matching")
        result = self._run_delegate(snapshot, survivor)
        self._row_match = result.matching.row_match.copy()
        self._col_match = result.matching.col_match.copy()
        self.counters["recomputes"] += 1
        self.counters["delegate_edges_scanned"] += int(
            result.counters.get("edges_scanned", 0)
        )
        return {
            "applied": len(updates),
            "mode": "delegated",
            "cardinality": self.cardinality,
        }

    def _apply_recompute(self, updates: list[GraphUpdate]) -> dict:
        """Delegated-only batch: apply everything, recompute once if needed.

        Pure vertex arrivals (and updates the graph rejects as no-ops) keep
        the stored matching optimal, so the delegate only reruns when an
        edge actually appeared or disappeared.  The summary's ``"changed"``
        counts updates that structurally changed the graph.
        """
        changed = 0
        edges_changed = False
        for update in updates:
            self.counters["updates_applied"] += 1
            if not self.graph.apply(update):
                continue
            changed += 1
            if update.op not in ("add_row", "add_col"):
                edges_changed = True
        if edges_changed:
            snapshot = self.graph.compact()
            initial = None
            if self.plan.spec.accepts_initial:
                initial = self._surviving_initial(snapshot)
            result = self._run_delegate(snapshot, initial)
            self._matching_obj = result.matching.copy()
            self.counters["recomputes"] += 1
            self.counters["delegate_edges_scanned"] += int(
                result.counters.get("edges_scanned", 0)
            )
        elif changed:
            self._grow_matching()
        return {
            "applied": len(updates),
            "mode": "delegated",
            "cardinality": self.cardinality,
            "changed": changed,
        }

    def _grow_matching(self) -> None:
        """Extend the stored matching to the current (grown) vertex counts."""
        matching = self._matching_obj
        n_rows, n_cols = self.graph.n_rows, self.graph.n_cols
        if isinstance(matching, CapacitatedMatching):
            self._matching_obj = CapacitatedMatching(
                matching.edge_rows.copy(), matching.edge_cols.copy(), n_rows, n_cols
            )
            return
        row_pad = np.full(n_rows - len(matching.row_match), UNMATCHED, dtype=np.int64)
        col_pad = np.full(n_cols - len(matching.col_match), UNMATCHED, dtype=np.int64)
        self._matching_obj = Matching(
            np.concatenate([matching.row_match, row_pad]),
            np.concatenate([matching.col_match, col_pad]),
        )

    def _surviving_initial(
        self, snapshot: BipartiteGraph
    ) -> Matching | CapacitatedMatching:
        """The stored matching pruned to edges that still exist in ``snapshot``.

        Only vertex counts grow and capacities never shrink, so the pruned
        pair set is always a valid warm start for the delegate.
        """
        matching = self._matching_obj
        pairs = [(u, v) for u, v in matching.pairs() if self.graph.has_edge(u, v)]
        if isinstance(matching, CapacitatedMatching):
            return CapacitatedMatching.from_pairs(snapshot, pairs)
        row_match = np.full(snapshot.n_rows, UNMATCHED, dtype=np.int64)
        col_match = np.full(snapshot.n_cols, UNMATCHED, dtype=np.int64)
        for u, v in pairs:
            row_match[u] = v
            col_match[v] = u
        return Matching(row_match, col_match)

    def _run_delegate(
        self,
        snapshot: BipartiteGraph,
        initial: Matching | CapacitatedMatching | None,
    ) -> MatchingResult:
        if self._recompute_fn is not None:
            return self._recompute_fn(snapshot, initial)
        return self.plan.run(snapshot, initial)

    # ------------------------------------------------------------- searching
    def _augment_any(self) -> bool:
        """One Kuhn sweep over the free columns with a shared visited set.

        Correct for finding a *single* augmentation: a failed source proves
        no free row is alternating-reachable from its visited cone, and the
        cone is source-independent while the matching is unchanged — so the
        marks may persist across sources until the first success.
        """
        self.counters["searches"] += 1  # one sweep counts as one search
        row_seen = bytearray(self.graph.n_rows)
        for v in np.flatnonzero(self._col_match < 0):
            if self._augment_from_col(int(v), row_seen, count_search=False):
                return True
        return False

    def _augment_from_col(
        self, start: int, row_seen: bytearray | None = None, *, count_search: bool = True
    ) -> bool:
        """DFS for an augmenting path from the free column ``start``; flips it.

        The walk is scalar (one small overlay adjacency list per frame — see
        the frontier-layer split in :mod:`repro.graph.frontier`), so each
        frame holds its neighbours as a plain Python list and the visited
        marks live in a ``bytearray``; ``edges_scanned`` is accumulated
        locally and flushed in bulk, with end-values matching the historical
        per-edge loop exactly.
        """
        if count_search:
            self.counters["searches"] += 1
        graph, counters = self.graph, self.counters
        row_match, col_match = self._row_match, self._col_match
        if row_seen is None:
            row_seen = bytearray(graph.n_rows)
        # Explicit stack of [column, neighbours, next offset]; path_rows[i] is
        # the row taken out of stack[i] (same shape as the seq HK DFS).
        stack: list[list] = [[start, graph.column_neighbors(start).tolist(), 0]]
        path_rows: list[int] = []
        edges = 0
        try:
            while stack:
                frame = stack[-1]
                v, neighbors, idx = frame[0], frame[1], frame[2]
                advanced = False
                while idx < len(neighbors):
                    u = neighbors[idx]
                    idx += 1
                    edges += 1
                    if row_seen[u]:
                        continue
                    row_seen[u] = True
                    w = int(row_match[u])
                    if w < 0:
                        row_match[u] = v
                        col_match[v] = u
                        for depth in range(len(stack) - 2, -1, -1):
                            prev_col = stack[depth][0]
                            prev_row = path_rows[depth]
                            row_match[prev_row] = prev_col
                            col_match[prev_col] = prev_row
                        counters["augmentations"] += 1
                        return True
                    frame[2] = idx
                    path_rows.append(u)
                    stack.append([w, graph.column_neighbors(w).tolist(), 0])
                    advanced = True
                    break
                if advanced:
                    continue
                frame[2] = idx
                stack.pop()
                if path_rows:
                    path_rows.pop()
            return False
        finally:
            counters["edges_scanned"] += edges

    def _augment_from_row(self, start: int, col_seen: bytearray | None = None) -> bool:
        """Mirror of :meth:`_augment_from_col` rooted at a free row."""
        self.counters["searches"] += 1
        graph, counters = self.graph, self.counters
        row_match, col_match = self._row_match, self._col_match
        if col_seen is None:
            col_seen = bytearray(graph.n_cols)
        stack: list[list] = [[start, graph.row_neighbors(start).tolist(), 0]]
        path_cols: list[int] = []
        edges = 0
        try:
            while stack:
                frame = stack[-1]
                u, neighbors, idx = frame[0], frame[1], frame[2]
                advanced = False
                while idx < len(neighbors):
                    v = neighbors[idx]
                    idx += 1
                    edges += 1
                    if col_seen[v]:
                        continue
                    col_seen[v] = True
                    w = int(col_match[v])
                    if w < 0:
                        col_match[v] = u
                        row_match[u] = v
                        for depth in range(len(stack) - 2, -1, -1):
                            prev_row = stack[depth][0]
                            prev_col = path_cols[depth]
                            col_match[prev_col] = prev_row
                            row_match[prev_row] = prev_col
                        counters["augmentations"] += 1
                        return True
                    frame[2] = idx
                    path_cols.append(v)
                    stack.append([w, graph.row_neighbors(w).tolist(), 0])
                    advanced = True
                    break
                if advanced:
                    continue
                frame[2] = idx
                stack.pop()
                if path_cols:
                    path_cols.pop()
            return False
        finally:
            counters["edges_scanned"] += edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalMatcher(graph={self.graph!r}, cardinality={self.cardinality}, "
            f"plan={self.plan.algorithm!r})"
        )
