"""Figure 3: performance profiles of the parallel algorithms.

Paper reference: G-PR is within 1.5× of the best algorithm on 75% of the
instances (G-HKDW: 46%, P-DBFS: 14%) and is the outright fastest on 61% of
them.  The reproduced shape: G-PR's performance-profile curve lies above
P-DBFS's at the 1.5× threshold and G-PR is the most frequent winner among
the three parallel codes.
"""

from __future__ import annotations

import pytest

from repro.bench.reports import build_figure3


def _value_at(points, x_target):
    return max(y for x, y in points if x <= x_target + 1e-9)


@pytest.mark.benchmark(group="figure3")
def test_figure3_performance_profiles(benchmark, suite_results):
    def build():
        return build_figure3(suite_results)

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["profiles"] = {
        name: [(round(x, 2), round(y, 3)) for x, y in points] for name, points in curves.items()
    }
    assert set(curves) == {"G-PR", "G-HKDW", "P-DBFS"}

    gpr_at_15 = _value_at(curves["G-PR"], 1.5)
    pdbfs_at_15 = _value_at(curves["P-DBFS"], 1.5)
    benchmark.extra_info["within_1.5x_of_best"] = {
        "G-PR": gpr_at_15,
        "G-HKDW": _value_at(curves["G-HKDW"], 1.5),
        "P-DBFS": pdbfs_at_15,
    }
    assert gpr_at_15 >= pdbfs_at_15

    # G-PR is the most frequent winner among the parallel algorithms (paper: 61%).
    winners = {"G-PR": 0, "G-HKDW": 0, "P-DBFS": 0}
    for res in suite_results:
        best = min(winners, key=lambda name, runs=res.runs: runs[name].modeled_seconds)
        winners[best] += 1
    benchmark.extra_info["best_algorithm_counts"] = winners
    assert winners["G-PR"] >= max(winners["P-DBFS"], 1)
