"""Latency and shedding behaviour of the matching server under load.

Three claims, measured with the load generator from
:mod:`repro.server.loadgen` against a real server on an ephemeral port:

* **clean load** — request latency stays interactive on the tiny profile
  and the server's ``/metrics`` p50/p99 agree in shape with the client-side
  view (the numbers are attached to ``benchmark.extra_info``);
* **fault schedule** — under ≥5% injected crashes plus ≥5% stalls, only the
  sabotaged requests fail or time out: every other admitted request returns
  a matching **bit-identical** to a direct :class:`MatchingService` run, and
  the server's leakage counter stays at zero;
* **saturation** — overload is shed with 429s that are visible in
  ``/metrics`` reject counters, while every accepted request still
  terminates cleanly.

Profile/seed knobs mirror the other service benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import FaultSchedule, MatchingJob
from repro.generators.suite import generate_instance
from repro.server import MatchingServer, QuotaPolicy
from repro.server.loadgen import run_load
from repro.service import MatchingService

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20130421"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")

_GRAPHS = ("amazon0505", "roadNet-PA", "delaunay_n20")
_ALGORITHMS = ("pr", "g-pr", "karp-sipser")


def _boot(**kwargs) -> MatchingServer:
    server = MatchingServer(
        backend="thread", workers=4, default_profile=BENCH_PROFILE, **kwargs
    )
    server.start_in_background()
    return server


def test_clean_load_latency(benchmark):
    """Steady-state p50/p99 under a mixed-tenant load, no faults."""
    server = _boot()
    try:
        # Warm the graph/result caches so the benchmark sees steady state.
        run_load("127.0.0.1", server.port, requests=9, concurrency=3,
                 graphs=_GRAPHS, algorithms=_ALGORITHMS,
                 profile=BENCH_PROFILE, seed=BENCH_SEED)

        def load():
            return run_load(
                "127.0.0.1", server.port, requests=48, concurrency=4, tenants=3,
                graphs=_GRAPHS, algorithms=_ALGORITHMS,
                profile=BENCH_PROFILE, seed=BENCH_SEED,
            )

        report = benchmark.pedantic(load, rounds=2, iterations=1)
        assert report.requests == 48
        assert report.statuses.get("ok", 0) == 48  # no shed, no failures
        assert report.leaked == 0 and report.failed_requests == 0

        # The server's exported percentiles must exist and be coherent.
        latency = report.metrics["latency_seconds"]
        assert latency["count"] >= 48
        assert 0 <= latency["p50"] <= latency["p90"] <= latency["p99"] <= latency["max"]
        assert report.metrics["requests"]["ok"] >= 48
        assert report.metrics["cache"]["result"]["hit_rate"] > 0  # warm repeats hit

        benchmark.extra_info["client_p50_ms"] = round(report.percentile(0.50) * 1e3, 3)
        benchmark.extra_info["client_p99_ms"] = round(report.percentile(0.99) * 1e3, 3)
        benchmark.extra_info["server_p50_ms"] = round(latency["p50"] * 1e3, 3)
        benchmark.extra_info["server_p99_ms"] = round(latency["p99"] * 1e3, 3)
        benchmark.extra_info["throughput_rps"] = round(report.throughput, 1)
    finally:
        server.shutdown()


def test_fault_schedule_sheds_only_affected_requests():
    """≥5% crash + ≥5% stall: unaffected requests are bit-identical to a
    direct MatchingService run and the leakage counter stays zero."""
    schedule = FaultSchedule(seed=17, crash_rate=0.1, stall_rate=0.1,
                             stall_seconds=0.05, stall_margin=0.1)
    server = _boot(fault_schedule=schedule, default_deadline=1.2, grace=0.4)
    try:
        report = run_load(
            "127.0.0.1", server.port, requests=40, concurrency=4, tenants=2,
            graphs=_GRAPHS, algorithms=_ALGORITHMS,
            profile=BENCH_PROFILE, seed=BENCH_SEED,
            deadline=1.2, include_matching=True,
        )
    finally:
        server.shutdown()

    assert report.requests == 40 and report.failed_requests == 0
    assert report.leaked == 0
    faults = report.metrics["faults"]
    assert faults["leaked"] == 0
    assert faults["scheduled"]["crash"] >= 1 and faults["scheduled"]["stall"] >= 1
    # Accounting closes: crashes are exactly the failures, stalls exactly
    # the timeouts, everything else is ok.
    assert report.statuses.get("failed", 0) == faults["injected"]["crash"]
    assert report.statuses.get("timeout", 0) == faults["injected"]["stall"]
    assert report.statuses.get("ok", 0) == 40 - faults["injected_total"]


def test_fault_survivors_bit_identical_to_direct_service():
    """Row-level check: every ok row equals the direct service's matching."""
    schedule = FaultSchedule(seed=23, crash_rate=0.15, stall_rate=0.1,
                             stall_seconds=0.05, stall_margin=0.1)
    server = _boot(fault_schedule=schedule, default_deadline=1.2, grace=0.4)
    import http.client
    import json

    rows = []
    try:
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=15)
        for index in range(16):
            conn.request("POST", "/v1/match", body=json.dumps({
                "graph": _GRAPHS[index % len(_GRAPHS)],
                "algorithm": "pr",
                "profile": BENCH_PROFILE,
                "seed": BENCH_SEED,
                "deadline": 1.2,
                "include_matching": True,
                "id": f"job-{index}",
            }))
            rows.append(json.loads(conn.getresponse().read()))
        conn.close()
    finally:
        server.shutdown()

    assert any(row["status"] != "ok" for row in rows)  # faults actually fired
    with MatchingService(backend="inline", cache=True) as service:
        for index, row in enumerate(rows):
            if row["status"] != "ok":
                assert row["injected_fault"] in ("crash", "stall")
                continue
            graph = generate_instance(
                _GRAPHS[index % len(_GRAPHS)], profile=BENCH_PROFILE, seed=BENCH_SEED
            )
            direct = service.submit(MatchingJob(graph=graph, algorithm="pr"))
            assert direct.ok
            assert row["cardinality"] == direct.result.cardinality
            assert row["row_match"] == [int(v) for v in direct.result.matching.row_match]


def test_saturation_sheds_and_exports_reject_counts():
    """Tiny quotas + stalling jobs: overload becomes 429s, not queue collapse."""
    schedule = FaultSchedule(seed=5, stall_rate=1.0, stall_seconds=0.3)
    server = _boot(
        fault_schedule=schedule,
        policy=QuotaPolicy(max_inflight_per_tenant=2, max_queue_depth=4),
        default_deadline=2.0, grace=0.5,
    )
    try:
        report = run_load(
            "127.0.0.1", server.port, requests=24, concurrency=8, tenants=2,
            graphs=_GRAPHS[:1], algorithms=("pr",),
            profile=BENCH_PROFILE, seed=BENCH_SEED, deadline=2.0,
        )
    finally:
        server.shutdown()

    assert report.requests == 24 and report.failed_requests == 0
    assert report.rejected > 0  # 8-way concurrency over depth-4 must shed
    admission = report.metrics["admission"]
    assert admission["rejected"] == report.rejected  # counters agree exactly
    assert sum(admission["rejected_by_reason"].values()) == report.rejected
    assert admission["depth"] == 0  # quiesced: every admitted slot released
    # Accepted requests all terminated (stalls land as ok without a tight
    # per-request deadline squeeze, or timeout under one — never lost).
    accepted = report.requests - report.rejected
    assert sum(report.statuses.values()) == accepted
    assert report.leaked == 0 and report.metrics["faults"]["leaked"] == 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
