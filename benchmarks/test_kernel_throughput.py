"""Wall-clock micro-benchmarks of the library's hot paths.

These are conventional pytest-benchmark measurements (multiple rounds) of
this Python implementation itself — useful for tracking performance
regressions of the reproduction code, independent of the paper's modelled
times.
"""

from __future__ import annotations

import pytest

from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.core.kernels import push_kernel_all_columns
from repro.core.relabel import gpu_global_relabel
from repro.generators import chung_lu_bipartite
from repro.gpusim import VirtualGPU
from repro.matching import Matching
from repro.seq.greedy import cheap_matching
from repro.seq.push_relabel import push_relabel_matching


@pytest.fixture(scope="module")
def workload():
    graph = chung_lu_bipartite(4000, 4000, avg_degree=8.0, exponent=2.2, seed=7)
    initial = cheap_matching(graph).matching
    return graph, initial


@pytest.mark.benchmark(group="wallclock")
def test_wallclock_gpr_shrink(benchmark, workload):
    graph, initial = workload
    result = benchmark(
        lambda: gpr_matching(
            graph, initial=initial.copy(), config=GPRConfig(variant=GPRVariant.SHRINK)
        )
    )
    assert result.cardinality > 0


@pytest.mark.benchmark(group="wallclock")
def test_wallclock_sequential_pr(benchmark, workload):
    graph, initial = workload
    result = benchmark(lambda: push_relabel_matching(graph, initial=initial.copy()))
    assert result.cardinality > 0


@pytest.mark.benchmark(group="wallclock")
def test_wallclock_global_relabel(benchmark, workload):
    graph, initial = workload

    def run():
        import numpy as np

        mu_row = initial.row_match.copy()
        mu_col = initial.col_match.copy()
        psi_row = np.zeros(graph.n_rows, dtype=np.int64)
        psi_col = np.ones(graph.n_cols, dtype=np.int64)
        return gpu_global_relabel(graph, mu_row, mu_col, psi_row, psi_col, VirtualGPU())

    assert benchmark(run) >= 2


@pytest.mark.benchmark(group="wallclock")
def test_wallclock_push_kernel(benchmark, workload):
    graph, _ = workload

    def run():
        import numpy as np

        matching = Matching.empty(graph)
        psi_row = np.zeros(graph.n_rows, dtype=np.int64)
        psi_col = np.ones(graph.n_cols, dtype=np.int64)
        return push_kernel_all_columns(
            graph, matching.row_match, matching.col_match, psi_row, psi_col
        )

    act, _ = benchmark(run)
    assert act
