"""Smoke benchmarks for the pooled execution backends.

CI's benchmark smoke step exercises :class:`ProcessPoolBackend` and
:class:`DevicePoolBackend` once each (selected via ``-k "throughput or
backend_smoke"``): one small mixed batch per backend, checked against
inline dispatch for identical matchings.  These are correctness-under-
deployment probes, not timed benchmarks — the timed service numbers live in
``test_service_throughput.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine import DevicePoolBackend, Engine, MatchingJob, ProcessPoolBackend
from repro.generators.suite import generate_instance

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20130421"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")


@pytest.fixture(scope="module")
def jobs():
    graph = generate_instance("roadNet-PA", profile=BENCH_PROFILE, seed=BENCH_SEED)
    return [
        MatchingJob(graph=graph, algorithm=a, job_id=a) for a in ("g-pr", "pr", "hk")
    ]


@pytest.fixture(scope="module")
def inline_reference(jobs):
    with Engine(backend="inline") as engine:
        return [engine.run(job) for job in jobs]


@pytest.mark.parametrize(
    "make_backend",
    [
        pytest.param(lambda: ProcessPoolBackend(max_workers=2), id="process"),
        pytest.param(lambda: DevicePoolBackend(devices=2), id="device"),
    ],
)
def test_backend_smoke(make_backend, jobs, inline_reference):
    with Engine(backend=make_backend(), own_backend=True) as engine:
        handles = engine.map(jobs)
        results = [handle.result() for handle in handles]
        assert all(handle.seconds > 0 for handle in handles)
    for result, reference in zip(results, inline_reference, strict=True):
        assert result.cardinality == reference.cardinality
        assert np.array_equal(result.matching.row_match, reference.matching.row_match)
