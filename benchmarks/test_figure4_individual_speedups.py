"""Figure 4: individual G-PR speedups over sequential PR, per instance.

Paper reference: speedups range from 0.31 (hugetrace-00000) to 12.60
(delaunay_n24), averaging 3.05, with a slowdown on 5 of the 28 graphs.  The
reproduced shape: a wide spread with wins on the majority of instances, the
trace/bubbles family at the bottom of the ranking, and an average above 1.
"""

from __future__ import annotations

import pytest

from repro.bench.reports import build_figure4
from repro.generators.suite import SUITE_SPECS


@pytest.mark.benchmark(group="figure4")
def test_figure4_individual_speedups(benchmark, suite_results):
    def build():
        return build_figure4(suite_results)

    rows, average = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["speedups"] = {name: round(s, 3) for _, name, s in rows}
    benchmark.extra_info["average_speedup"] = round(average, 3)
    paper = {spec.name: spec.paper.speedup_gpr_vs_pr for spec in SUITE_SPECS}
    benchmark.extra_info["paper_speedups"] = {
        name: round(paper[name], 3) for _, name, _ in rows if name in paper
    }

    assert len(rows) == len(suite_results)
    speedups = {name: s for _, name, s in rows}
    # G-PR wins on the majority of the instances and on average.
    assert sum(1 for s in speedups.values() if s > 1.0) > len(speedups) / 2
    assert average > 1.0
    # The trace/bubbles family sits in the losing tail, as in the paper.
    losers = {name for name, s in speedups.items() if s < 1.0}
    trace_family = {
        spec.name for spec in SUITE_SPECS if spec.family in ("trace", "bubbles")
    } & set(speedups)
    if trace_family:
        assert trace_family & losers or min(speedups[n] for n in trace_family) < average
