"""Figure 1: G-PR variants × global-relabel strategies (geometric-mean runtimes).

Paper reference: the adaptive strategies beat the fixed ones for nearly every
configuration; the active-list variants (NoShr / Shr) beat G-PR-First by
14–84%; shrinking adds another 2–8%; the best configuration is G-PR-Shr with
(adaptive, 0.7) / (adaptive, 0.3).

The shape checked here: for each strategy the active-list variants are no
slower than G-PR-First, and the best adaptive configuration is no slower
than the best fixed configuration.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_INSTANCES, BENCH_PROFILE, BENCH_SEED
from repro.bench.reports import FIGURE1_STRATEGIES, build_figure1


@pytest.mark.benchmark(group="figure1")
def test_figure1_variant_strategy_sweep(benchmark):
    def sweep():
        return build_figure1(
            profile=BENCH_PROFILE, seed=BENCH_SEED, instances=BENCH_INSTANCES
        )

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = {(c.variant, c.strategy): c.geomean_seconds for c in cells}
    benchmark.extra_info["geomean_seconds"] = {
        f"{variant}/{strategy}": round(value, 6) for (variant, strategy), value in table.items()
    }

    strategies = [s.replace(":", ",") for s in FIGURE1_STRATEGIES]
    # The paper finds the active-list variants 14-84% faster than G-PR-First.
    # On the scaled-down suite the idle-thread savings that drive that gap
    # almost vanish (thousands instead of millions of idle threads per
    # launch), so the shape check is bounded parity rather than strict
    # improvement; EXPERIMENTS.md discusses the residual difference.
    first_best = min(table[("G-PR-First", s)] for s in strategies)
    noshr_best = min(table[("G-PR-NoShr", s)] for s in strategies)
    shr_best = min(table[("G-PR-Shr", s)] for s in strategies)
    assert noshr_best <= first_best * 1.25
    assert shr_best <= first_best * 1.25

    # The best adaptive configuration is at least as good as the best fixed one.
    adaptive = [s for s in strategies if s.startswith("adaptive")]
    fixed = [s for s in strategies if s.startswith("fix")]
    best_adaptive = min(table[("G-PR-Shr", s)] for s in adaptive)
    best_fixed = min(table[("G-PR-Shr", s)] for s in fixed)
    assert best_adaptive <= best_fixed * 1.05
