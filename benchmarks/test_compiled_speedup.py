"""Wall-clock speedup of the compiled (numba) tier over the NumPy tier.

Requires the ``[compiled]`` extra: every test here is skipped on a
numpy-only install (the dispatch-parity suite in
``tests/test_compiled_dispatch.py`` still proves the twins bit-identical
there, running them as plain Python).  With numba present these benchmarks
guard the compiled tier's reason to exist — the asserted floors back the
``compiled-smoke`` CI job:

* ``alternating_level_bfs`` (a frontier primitive): the JIT scalar walk
  beats the vectorized NumPy expansion by at least 3x on the suite
  instance measured;
* ``ghkdw_augment`` (a lockstep kernel): the JIT DFS beats the per-thread
  Python loop by at least 3x (typically orders of magnitude — the NumPy
  tier has no vectorized form of this kernel).

Both comparisons assert bit-identical outputs before comparing clocks.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.compiled import dispatch
from repro.core.ghkdw import ghkdw_matching
from repro.core.gpr import gpr_matching
from repro.generators.suite import generate_instance
from repro.graph.frontier import alternating_level_bfs
from repro.seq.greedy import cheap_matching

pytestmark = pytest.mark.skipif(
    not dispatch.NUMBA_AVAILABLE, reason="numba not installed (the [compiled] extra)"
)

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20130421"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "small")

#: Floors deliberately below the typically measured gaps to keep CI unflaky.
_MIN_SPEEDUP = 3.0


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_compiled_alternating_level_bfs_beats_numpy(benchmark):
    graph = generate_instance("soc-LiveJournal1", profile=BENCH_PROFILE, seed=BENCH_SEED)
    matching = cheap_matching(graph).matching
    row_match, col_match = matching.row_match, matching.col_match

    def run():
        return alternating_level_bfs(graph.col_ptr, graph.col_ind, row_match, col_match)

    dispatch.warm_up()
    with dispatch.override(False):
        run()  # NumPy-path caches
        numpy_seconds, base = _best_of(run)
    with dispatch.override(True):
        compiled_seconds, twin = _best_of(run)

    np.testing.assert_array_equal(base[0], twin[0])
    assert base[1:] == twin[1:]

    speedup = numpy_seconds / compiled_seconds
    assert speedup >= _MIN_SPEEDUP, (
        f"compiled alternating_level_bfs only {speedup:.2f}x faster than NumPy "
        f"({compiled_seconds * 1e3:.3f}ms vs {numpy_seconds * 1e3:.3f}ms)"
    )

    benchmark.extra_info["compiled_bfs_speedup_vs_numpy"] = round(speedup, 2)
    benchmark.extra_info["edges_scanned"] = base[2]
    with dispatch.override(True):
        benchmark(run)


def test_compiled_ghkdw_augment_beats_python(benchmark):
    graph = generate_instance("amazon0505", profile=BENCH_PROFILE, seed=BENCH_SEED)

    def run():
        return ghkdw_matching(graph)

    dispatch.warm_up()
    with dispatch.override(False):
        run()
        python_seconds, base = _best_of(run)
    with dispatch.override(True):
        compiled_seconds, twin = _best_of(run)

    np.testing.assert_array_equal(base.matching.row_match, twin.matching.row_match)
    np.testing.assert_array_equal(base.matching.col_match, twin.matching.col_match)
    assert base.counters == twin.counters
    assert base.modeled_time == twin.modeled_time

    speedup = python_seconds / compiled_seconds
    assert speedup >= _MIN_SPEEDUP, (
        f"compiled G-HKDW augment only {speedup:.2f}x faster than the Python DFS "
        f"({compiled_seconds * 1e3:.2f}ms vs {python_seconds * 1e3:.2f}ms)"
    )

    benchmark.extra_info["compiled_ghkdw_speedup_vs_numpy_tier"] = round(speedup, 2)
    benchmark.extra_info["augmentations"] = base.counters["augmentations"]
    with dispatch.override(True):
        benchmark(run)


def test_compiled_gpr_parity_on_suite_instance(benchmark):
    """The full G-PR run stays bit-identical across tiers on a suite instance."""
    graph = generate_instance("roadNet-PA", profile=BENCH_PROFILE, seed=BENCH_SEED)

    dispatch.warm_up()
    with dispatch.override(False):
        base = gpr_matching(graph)
        numpy_seconds, _ = _best_of(lambda: gpr_matching(graph))
    with dispatch.override(True):
        twin = gpr_matching(graph)
        compiled_seconds, _ = _best_of(lambda: gpr_matching(graph))

    np.testing.assert_array_equal(base.matching.row_match, twin.matching.row_match)
    assert base.counters == twin.counters
    assert base.modeled_time == twin.modeled_time
    assert base.cardinality == twin.cardinality

    benchmark.extra_info["compiled_gpr_speedup_vs_numpy"] = round(
        numpy_seconds / compiled_seconds, 2
    )
    with dispatch.override(True):
        benchmark(lambda: gpr_matching(graph))
