"""Figure 2: speedup profiles of G-PR, G-HKDW and P-DBFS w.r.t. sequential PR.

Paper reference: G-PR has the best profile — P(speedup ≥ 5) is 39% for G-PR
versus 21% (G-HKDW) and 14% (P-DBFS), and G-PR is faster than PR on 82% of
the instances.  The reproduced shape: G-PR's profile dominates P-DBFS's over
the low-speedup range and G-PR beats PR on the majority of instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reports import build_figure2, build_figure4


@pytest.mark.benchmark(group="figure2")
def test_figure2_speedup_profiles(benchmark, suite_results):
    def build():
        return build_figure2(suite_results)

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["profiles"] = {
        name: [(round(x, 2), round(y, 3)) for x, y in points] for name, points in curves.items()
    }
    assert set(curves) == {"G-PR", "G-HKDW", "P-DBFS"}
    for points in curves.values():
        ys = [y for _, y in points]
        # Profiles are non-increasing and start at P(speedup >= 0) = 1.
        assert ys[0] == 1.0
        assert all(a >= b - 1e-12 for a, b in zip(ys, ys[1:], strict=False))

    # G-PR is faster than sequential PR on the majority of instances (paper: 82%).
    rows, _ = build_figure4(suite_results)
    wins = sum(1 for _, _, speedup in rows if speedup > 1.0)
    benchmark.extra_info["gpr_win_fraction"] = wins / len(rows)
    assert wins > len(rows) / 2

    # Aggregate ordering (paper, Table I geometric means): G-PR ahead of P-DBFS.
    # The paper's stronger profile-dominance statement does not fully carry
    # over because the scaled trace/bubbles analogs have much shorter
    # augmenting paths than the originals, which flatters P-DBFS there
    # (documented in EXPERIMENTS.md); the geometric-mean ordering does hold.
    def geomean_speedup(name):
        values = [res.speedup(name) for res in suite_results]
        return float(np.exp(np.mean(np.log(values))))

    gpr_geo = geomean_speedup("G-PR")
    pdbfs_geo = geomean_speedup("P-DBFS")
    benchmark.extra_info["geomean_speedups"] = {"G-PR": gpr_geo, "P-DBFS": pdbfs_geo}
    assert gpr_geo >= pdbfs_geo
