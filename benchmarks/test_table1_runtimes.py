"""Table I: per-instance runtimes of G-PR, G-HKDW, P-DBFS and PR + geometric means.

Paper reference (geometric means of the runtimes over the 28 instances):
G-PR 0.70 s, G-HKDW 0.92 s, P-DBFS 1.99 s, PR 2.15 s — i.e. G-PR is the
fastest overall, about 1.3× ahead of G-HKDW and about 3× ahead of PR and
P-DBFS.  The reproduced shape to check: the ordering of the geometric means
(G-PR fastest, sequential PR and P-DBFS slowest) on the scaled suite.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_INSTANCES, BENCH_PROFILE, BENCH_SEED
from repro.bench.harness import SuiteRunner
from repro.bench.reports import build_table1, render_table


@pytest.mark.benchmark(group="table1")
def test_table1_full_suite(benchmark):
    """Regenerate Table I; the benchmark measures one full-suite harness pass."""
    runner = SuiteRunner(profile=BENCH_PROFILE, seed=BENCH_SEED, instances=BENCH_INSTANCES)

    def regenerate():
        return build_table1(runner.run())

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    geomeans = table["geomeans"]
    benchmark.extra_info["geomean_modeled_seconds"] = {
        name: round(value, 6) for name, value in geomeans.items()
    }
    benchmark.extra_info["rendered"] = render_table(table)
    # Shape assertions mirroring the paper's bottom row.
    assert geomeans["G-PR"] < geomeans["PR"], "G-PR must beat sequential PR on geometric mean"
    assert geomeans["G-PR"] < geomeans["P-DBFS"], "G-PR must beat P-DBFS on geometric mean"
    # Every algorithm found a maximum matching of the same cardinality per instance.
    for row in table["rows"]:
        assert row["MM"] >= row["IM"]


@pytest.mark.benchmark(group="table1")
def test_table1_cardinalities_agree(benchmark, suite_results):
    """All four algorithms agree on the maximum matching cardinality of every instance."""

    def check():
        mismatches = []
        for res in suite_results:
            cards = {name: run.cardinality for name, run in res.runs.items()}
            if len(set(cards.values())) != 1:
                mismatches.append((res.spec.name, cards))
        return mismatches

    mismatches = benchmark.pedantic(check, rounds=1, iterations=1)
    assert mismatches == []
