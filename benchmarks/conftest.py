"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's tables and figures on the scaled-down
synthetic suite.  They are wall-clock benchmarks of this library's
implementations (via pytest-benchmark) whose *payloads* are the modelled-time
artefacts of the paper; each benchmark also attaches the reproduced numbers
to ``benchmark.extra_info`` so the shape comparison against the paper can be
read straight from the benchmark report.

Environment knobs:

``REPRO_BENCH_PROFILE``
    Instance-size profile (default ``small``); use ``tiny`` for smoke runs
    and ``medium`` for a closer look at the scaling behaviour.
``REPRO_BENCH_INSTANCES``
    Comma-separated subset of instance names (default: the full 28).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import SuiteRunner

BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "small")
_instances_env = os.environ.get("REPRO_BENCH_INSTANCES", "").strip()
BENCH_INSTANCES = tuple(s for s in _instances_env.split(",") if s) or None
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20130421"))


@pytest.fixture(scope="session")
def suite_results():
    """Table-I style results (G-PR, G-HKDW, P-DBFS, PR) over the suite, computed once."""
    runner = SuiteRunner(profile=BENCH_PROFILE, seed=BENCH_SEED, instances=BENCH_INSTANCES)
    return runner.run()
