"""Benchmark smoke for the weighted-assignment solvers.

Checks the performance-relevant contract rather than raw speed: the
ε-scaling auction's total bidding work stays within a sane factor of the
instance size (scaling is doing its job), both solvers agree with each
other across objectives, and the gpusim-kernelized auction reports a
modelled time.  ``REPRO_BENCH_PROFILE=tiny`` keeps the CI smoke light.
"""

from __future__ import annotations

import os

import pytest

from repro.generators import (
    rank_correlated_weights,
    uniform_random_bipartite,
    uniform_weights,
)
from repro.gpusim.device import DeviceSpec, VirtualGPU
from repro.weighted import (
    AuctionConfig,
    SAPConfig,
    certify_optimal,
    weighted_auction_matching,
    weighted_sap_matching,
)

_SIZES = {"tiny": 120, "small": 300, "medium": 600, "large": 1200}
N = _SIZES.get(os.environ.get("REPRO_BENCH_PROFILE", "small"), 300)


@pytest.fixture(scope="module")
def instance():
    graph = uniform_random_bipartite(N, N + N // 10, avg_degree=5.0, seed=42)
    return rank_correlated_weights(graph, seed=43)


def test_weighted_solvers_smoke(benchmark, instance):
    sap = weighted_sap_matching(instance, SAPConfig())
    auction = benchmark(lambda: weighted_auction_matching(instance, AuctionConfig()))
    assert auction.cardinality == sap.cardinality
    assert auction.counters["total_weight"] == pytest.approx(sap.counters["total_weight"])
    assert certify_optimal(instance, auction.matching, auction.duals).ok(0.999)
    # ε-scaling keeps the total bidding work near-linear in the instance:
    # without it the bid count explodes with the weight resolution.
    assert auction.counters["bids"] < 400 * instance.n_vertices


def test_weighted_device_cost_model(instance):
    light = uniform_weights(
        uniform_random_bipartite(min(N, 150), min(N, 150), avg_degree=4.0, seed=44),
        seed=45,
    )
    device = VirtualGPU(DeviceSpec().scaled())
    result = weighted_auction_matching(light, device=device)
    assert result.modeled_time is not None and result.modeled_time > 0
    by_kernel = device.ledger.by_kernel()
    assert set(by_kernel) == {"auction_bid", "auction_assign"}
