"""Ablation (§III-C): effect of the active-column list and of shrinking.

The paper attributes a 14–84% improvement to keeping the explicit active
list (fewer, less divergent threads) and another 2–8% to compacting that
list after every global relabel.  This benchmark isolates the two
mechanisms on a representative subset of the suite.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PROFILE, BENCH_SEED
from repro.bench.harness import geometric_mean, modeled_seconds_for, reference_device
from repro.core.gpr import GPRConfig, GPRVariant, gpr_matching
from repro.generators.suite import generate_instance
from repro.seq.greedy import cheap_matching

_SUBSET = ("amazon0505", "flickr", "kron_g500-logn20", "soc-LiveJournal1", "delaunay_n21", "wb-edu")


@pytest.mark.benchmark(group="ablation")
def test_ablation_active_list_and_shrink(benchmark):
    prepared = []
    for name in _SUBSET:
        graph = generate_instance(name, profile=BENCH_PROFILE, seed=BENCH_SEED)
        prepared.append((graph, cheap_matching(graph).matching))

    def run_variant(variant, shrink_threshold=64):
        times = []
        for graph, initial in prepared:
            result = gpr_matching(
                graph,
                initial=initial.copy(),
                config=GPRConfig(variant=variant, shrink_threshold=shrink_threshold),
                device=reference_device(),
            )
            times.append(modeled_seconds_for(result))
        return geometric_mean(times)

    def ablation():
        return {
            "first": run_variant(GPRVariant.FIRST),
            "noshrink": run_variant(GPRVariant.NO_SHRINK),
            "shrink": run_variant(GPRVariant.SHRINK),
        }

    geomeans = benchmark.pedantic(ablation, rounds=1, iterations=1)
    benchmark.extra_info["geomean_seconds"] = {k: round(v, 6) for k, v in geomeans.items()}
    # The paper measures the active-list gain on graphs with millions of
    # columns, where skipping the (n − |Ac|) idle threads saves a lot; on the
    # scaled-down suite the idle-thread work is only a few thousand operations
    # per launch, so the gain shrinks towards parity (see EXPERIMENTS.md).
    # The shape check is therefore a bounded-regression check rather than a
    # strict improvement: the active-list variants must stay within 25% of the
    # all-columns variant, and shrinking must not hurt the active-list variant.
    assert geomeans["noshrink"] <= geomeans["first"] * 1.25
    assert geomeans["shrink"] <= geomeans["noshrink"] * 1.10
