"""Memory-scaling assertions for the out-of-core sharded pipeline.

The contract of :func:`repro.sharded.ingest_matrix_market_sharded` plus
:class:`repro.sharded.ShardedMatcher` is that peak memory follows the
*largest shard*, not the file: growing the instance while growing the shard
count in proportion must keep the per-run peak flat.  These tests measure
real allocation peaks with :mod:`tracemalloc` (NumPy reports its buffers
through it), so a regression that silently materializes the full edge list
— in the reader, the router or the reconciler — fails loudly here.

Sizes are kept modest (the largest file holds 180k entries) so the suite
stays fast; the CI ``shard-smoke`` job runs the same assertion at the
10^7-entry scale through ``scripts/shard_smoke.py``.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.api import max_bipartite_matching
from repro.graph.io import read_matrix_market
from repro.sharded import (
    ShardedMatcher,
    ingest_matrix_market_sharded,
    stream_random_bipartite_mtx,
)

#: Entries parsed per streaming chunk — held constant across sizes so the
#: chunk buffers contribute the same constant to every measured peak.
CHUNK = 10_000
#: (n per side, total declared entries, shard count): entries per shard is
#: 15_000 for every point, while the total grows 6x end to end.
LADDER = [
    (500, 30_000, 2),
    (1_000, 90_000, 6),
    (1_500, 180_000, 12),
]


def _sharded_peak(path, n_shards: int) -> tuple[int, int]:
    """(tracemalloc peak bytes, cardinality) of ingest + sharded solve."""
    tracemalloc.start()
    sharded = ingest_matrix_market_sharded(
        path, n_shards, chunk_entries=CHUNK, max_resident=1
    )
    result = ShardedMatcher(sharded, "hk").run()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    sharded.close()
    return peak, result.cardinality


@pytest.fixture(scope="module")
def ladder_files(tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharded-scaling")
    return [
        (
            stream_random_bipartite_mtx(
                directory / f"g{entries}.mtx",
                n,
                n,
                entries,
                seed=20130421,
                chunk_entries=CHUNK,
            ),
            n_shards,
        )
        for n, entries, n_shards in LADDER
    ]


def test_per_shard_peak_memory_stays_flat(ladder_files):
    peaks = []
    for path, n_shards in ladder_files:
        peak, cardinality = _sharded_peak(path, n_shards)
        assert cardinality > 0
        peaks.append(peak)
    # Edges grow 6x across the ladder while entries-per-shard are constant;
    # a flat profile means the peak must not follow the total.  2x headroom
    # absorbs allocator noise — the failure mode being guarded against
    # (materializing the file) would show up as ~6x.
    assert max(peaks) <= 2.0 * min(peaks), (
        f"per-shard peak memory is not flat across the ladder: {peaks}"
    )


def test_sharded_peak_is_far_below_in_memory_solve(ladder_files):
    path, n_shards = ladder_files[-1]
    sharded_peak, sharded_card = _sharded_peak(path, n_shards)

    tracemalloc.start()
    graph = read_matrix_market(path)
    result = max_bipartite_matching(graph, "hk")
    _, inmemory_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert sharded_card == result.cardinality
    # Measured locally the gap is ~10x; 2x keeps the assertion robust while
    # still failing if the out-of-core path starts holding the whole graph.
    assert sharded_peak * 2 < inmemory_peak, (
        f"sharded peak {sharded_peak} is not clearly below "
        f"in-memory peak {inmemory_peak}"
    )
