"""Incremental repair versus from-scratch recompute on a streaming workload.

A sparse update trace (a few percent of the edges churning) invalidates
almost none of the previous maximum matching, so repairing it per update
should scan far fewer edges than recomputing from scratch after every
batch.  This benchmark replays the same seeded trace twice — once through
:class:`~repro.dynamic.incremental.IncrementalMatcher`'s targeted searches,
once recomputing with the same algorithm on each batch's compacted snapshot
— and compares the edges-scanned counters (the machine-independent work
measure used throughout the paper reproduction).
"""

from __future__ import annotations

import os

import pytest

from repro.core.api import max_bipartite_matching
from repro.dynamic import DynamicBipartiteGraph, IncrementalMatcher
from repro.generators.suite import generate_instance
from repro.generators.updates import random_update_trace

# Env knobs mirror benchmarks/conftest.py (not imported: `conftest` is an
# ambiguous module name when tests/ and benchmarks/ are collected together).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20130421"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")

_ALGORITHM = "hk"
_BATCH = 20


@pytest.fixture(scope="module")
def workload():
    graph = generate_instance("roadNet-PA", profile=BENCH_PROFILE, seed=BENCH_SEED)
    # Sparse churn: ~8% of the edges touched across the whole trace.
    n_updates = max(20, int(graph.n_edges * 0.08))
    trace = random_update_trace(graph, n_updates, insert_fraction=0.5, seed=BENCH_SEED + 1)
    return graph, trace


def _batches(trace):
    for start in range(0, len(trace), _BATCH):
        yield trace[start : start + _BATCH]


def test_incremental_repair_scans_fewer_edges(workload, benchmark):
    graph, trace = workload

    def replay_incremental():
        matcher = IncrementalMatcher(graph, plan=_ALGORITHM, batch_threshold=10**9)
        for batch in _batches(trace):
            matcher.apply(batch)
        return matcher

    matcher = benchmark(replay_incremental)
    incremental_scanned = matcher.counters["edges_scanned"]

    # From-scratch baseline: recompute on the compacted snapshot after each
    # batch (same algorithm, same cheap-matching warm start as a cold run).
    scratch_scanned = 0
    cardinalities = []
    dynamic = DynamicBipartiteGraph(graph)
    for batch in _batches(trace):
        for update in batch:
            dynamic.apply(update)
        result = max_bipartite_matching(dynamic.snapshot(), _ALGORITHM)
        scratch_scanned += result.counters["edges_scanned"]
        cardinalities.append(result.cardinality)

    # Same final answer, far less work.
    assert matcher.cardinality == cardinalities[-1]
    assert incremental_scanned < scratch_scanned, (
        f"incremental repair scanned {incremental_scanned} edges, "
        f"from-scratch recompute {scratch_scanned}"
    )
    benchmark.extra_info["edges_scanned_incremental"] = int(incremental_scanned)
    benchmark.extra_info["edges_scanned_scratch"] = int(scratch_scanned)
    benchmark.extra_info["work_ratio"] = round(incremental_scanned / max(1, scratch_scanned), 4)
    benchmark.extra_info["updates"] = len(trace)
