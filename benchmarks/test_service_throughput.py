"""Throughput of the batched MatchingService versus serial dispatch.

A production batch mixes repeated graphs (the same instance re-submitted by
many callers) with fresh ones.  Serial dispatch pays the full algorithm cost
for every job; the service deduplicates identical jobs within a batch and
serves repeats from the result cache, so batch throughput scales with the
number of *distinct* jobs.  The workload below draws from the generator
suite (tiny profile) with a 3x repeat factor, i.e. 2/3 of the jobs are
cache-servable.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.api import max_bipartite_matching
from repro.generators.suite import generate_instance
from repro.service import MatchingJob, MatchingService

# Env knobs mirror benchmarks/conftest.py (not imported: `conftest` is an
# ambiguous module name when tests/ and benchmarks/ are collected together).
# The profile defaults to "tiny" rather than conftest's "small": this
# benchmark measures batching overhead, which instance scale only dilutes.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20130421"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")

_INSTANCES = ("amazon0505", "roadNet-PA", "delaunay_n20", "hugetrace-00000")
_ALGORITHMS = ("g-pr", "pr")
_REPEATS = 3


def _workload() -> list[MatchingJob]:
    graphs = [
        generate_instance(name, profile=BENCH_PROFILE, seed=BENCH_SEED)
        for name in _INSTANCES
    ]
    return [
        MatchingJob(graph=graph, algorithm=algorithm, job_id=f"{graph.name}/{algorithm}/{i}")
        for i in range(_REPEATS)
        for graph in graphs
        for algorithm in _ALGORITHMS
    ]


@pytest.fixture(scope="module")
def workload():
    return _workload()


def test_batched_dispatch_beats_serial(workload):
    distinct = len(_INSTANCES) * len(_ALGORITHMS)

    # Best-of-2 for each path filters scheduler noise on shared runners.
    serial_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        serial = [max_bipartite_matching(job.graph, job.algorithm) for job in workload]
        serial_seconds = min(serial_seconds, time.perf_counter() - started)

    batch_seconds = float("inf")
    for _ in range(2):
        service = MatchingService(cache=True)  # fresh cache per measurement
        started = time.perf_counter()
        report = service.submit_batch(workload)
        batch_seconds = min(batch_seconds, time.perf_counter() - started)

    # Same answers, in order.
    assert report.cardinalities() == [r.cardinality for r in serial]
    # Only the distinct jobs were computed; the rest came from the cache tier.
    assert report.executed == distinct
    assert report.cache_hits + report.deduplicated == len(workload) - distinct
    # The cache tier translates into wall-clock throughput.
    speedup = serial_seconds / batch_seconds
    print(
        f"\nservice throughput: {len(workload)} jobs, {distinct} distinct — "
        f"serial {serial_seconds:.3f}s, batched {batch_seconds:.3f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert batch_seconds < serial_seconds


def test_warm_service_throughput(benchmark, workload):
    """Steady-state batch latency once the cache has seen the graphs."""
    service = MatchingService(cache=True)
    service.submit_batch(workload)  # warm the cache

    def serve():
        return service.submit_batch(workload)

    report = benchmark.pedantic(serve, rounds=3, iterations=1)
    assert report.executed == 0
    assert report.hit_rate == 1.0
    benchmark.extra_info["jobs"] = len(workload)
    benchmark.extra_info["hit_rate"] = report.hit_rate
