"""Ablation (§IV): global-relabel frequency of the sequential PR baseline.

The paper tunes the sequential PR's global-relabel threshold ``k × (m + n)``
pushes and reports ``k = 0.5`` as slightly better than the alternatives for
its data set; that value is then used in all comparisons.  This benchmark
sweeps ``k`` on a subset of the suite and records the modelled runtimes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PROFILE, BENCH_SEED
from repro.bench.harness import geometric_mean, modeled_seconds_for
from repro.generators.suite import generate_instance
from repro.seq.greedy import cheap_matching
from repro.seq.push_relabel import PushRelabelConfig, push_relabel_matching

_SUBSET = ("amazon0505", "flickr", "roadNet-PA", "kron_g500-logn20", "patents")
_K_VALUES = (0.25, 0.5, 1.0, 2.0)


@pytest.mark.benchmark(group="seq-pr")
def test_sequential_pr_global_relabel_frequency(benchmark):
    prepared = []
    for name in _SUBSET:
        graph = generate_instance(name, profile=BENCH_PROFILE, seed=BENCH_SEED)
        prepared.append((graph, cheap_matching(graph).matching))

    def sweep():
        geomeans = {}
        for k in _K_VALUES:
            times = []
            for graph, initial in prepared:
                result = push_relabel_matching(
                    graph, initial=initial.copy(), config=PushRelabelConfig(global_relabel_k=k)
                )
                times.append(modeled_seconds_for(result))
            geomeans[k] = geometric_mean(times)
        return geomeans

    geomeans = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["geomean_seconds_by_k"] = {str(k): round(v, 6) for k, v in geomeans.items()}
    # The tuned value must be competitive: within 25% of the best k in the sweep.
    assert geomeans[0.5] <= min(geomeans.values()) * 1.25
