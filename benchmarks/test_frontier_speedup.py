"""Wall-clock speedup of the vectorized frontier layer over its deque twin.

Measures ``multi_source_bfs`` against the kept reference implementation
(``reference_bfs``) on one suite instance — the isolated
whole-frontier-vs-per-edge gap that is the mechanism behind the
CPU-baseline rewrite — and asserts both traversals are identical.

The committed ``BENCH_small.json`` plus ``repro perf --compare`` track the
absolute trajectory of the full algorithms; this benchmark guards the
*relative* claim (the frontier layer beats per-edge traversal by a wide
margin) in-repo, against the executable reference, on whatever machine
runs it.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.graph.frontier import multi_source_bfs, reference_bfs
from repro.generators.suite import generate_instance
from repro.matching import UNMATCHED
from repro.seq.greedy import cheap_matching

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20130421"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "small")

#: The asserted floor is deliberately below the typically measured gap
#: (>5x for the BFS microkernel on the small profile) to keep CI unflaky.
_MIN_SPEEDUP = 3.0


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_vectorized_bfs_beats_reference_deque_bfs(benchmark):
    graph = generate_instance("soc-LiveJournal1", profile=BENCH_PROFILE, seed=BENCH_SEED)
    sources = np.flatnonzero(cheap_matching(graph).matching.col_match == UNMATCHED)

    # Warm both paths once (imports, dispatch caches) before timing.
    multi_source_bfs(graph, sources)
    reference_bfs(graph, sources)

    fast_seconds, fast = _best_of(lambda: multi_source_bfs(graph, sources))
    ref_seconds, ref = _best_of(lambda: reference_bfs(graph, sources))

    # Identical traversals ...
    np.testing.assert_array_equal(fast.col_level, ref.col_level)
    np.testing.assert_array_equal(fast.row_parent, ref.row_parent)
    assert fast.edges_scanned == ref.edges_scanned

    # ... at a multiple of the speed.
    speedup = ref_seconds / fast_seconds
    assert speedup >= _MIN_SPEEDUP, (
        f"vectorized BFS only {speedup:.2f}x faster than the deque reference "
        f"({fast_seconds * 1e3:.2f}ms vs {ref_seconds * 1e3:.2f}ms)"
    )

    def payload():
        return multi_source_bfs(graph, sources)

    benchmark.extra_info["bfs_speedup_vs_reference"] = round(speedup, 2)
    benchmark.extra_info["edges_scanned"] = ref.edges_scanned
    benchmark(payload)
