#!/usr/bin/env python
"""Out-of-core memory gate: the CI ``shard-smoke`` job.

Generates a seeded random bipartite instance straight to disk as
``.mtx.gz`` (fixed-size chunks, the file is never materialized in memory),
then drives it through the exact path a user takes —
``repro run --mtx <file> --shards N`` — with :mod:`tracemalloc` tracing
the whole ingest + solve.  The run fails if the traced peak exceeds
``--budget-mb``.

The budget is what makes this a *scaling* gate rather than a constant
check: it is sized from the largest shard (plus the vertex-sized metadata
that is always resident), so a regression that materializes the full edge
list anywhere — the streaming reader, the shard router, the reconciler —
overshoots it several-fold at the 10^7-entry scale, while legitimate
per-shard allocations fit comfortably.  The companion property tests in
``benchmarks/test_sharded_scaling.py`` pin the same contract at small
sizes by measuring flatness across a ladder.

Example (the CI invocation)::

    python scripts/shard_smoke.py --entries 10000000 --rows 250000 \
        --cols 250000 --shards 4 --budget-mb 600
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import tracemalloc
from pathlib import Path


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--entries", type=int, default=10_000_000,
        help="declared Matrix-Market entries to generate (default 10^7)",
    )
    parser.add_argument("--rows", type=int, default=250_000, help="rows per side")
    parser.add_argument("--cols", type=int, default=250_000, help="columns")
    parser.add_argument("--shards", type=int, default=4, help="shard count")
    parser.add_argument(
        "--partition", default="contiguous", choices=("contiguous", "degree"),
        help="shard splitter handed to repro run",
    )
    parser.add_argument("--algorithm", default="hk", help="per-shard kernel")
    parser.add_argument("--seed", type=int, default=20130421, help="generator seed")
    parser.add_argument(
        "--chunk-entries", type=int, default=1 << 17,
        help="streaming chunk size for generation (reader uses its default)",
    )
    parser.add_argument(
        "--budget-mb", type=float, required=True,
        help="hard ceiling on the tracemalloc peak of ingest + solve, in MB",
    )
    parser.add_argument(
        "--mtx", type=Path, default=None,
        help="reuse an existing .mtx/.mtx.gz instead of generating one",
    )
    parser.add_argument(
        "--directory", type=Path, default=None,
        help="where to write the generated file (default: a temp dir)",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    from repro import cli
    from repro.sharded import stream_random_bipartite_mtx

    if args.mtx is not None:
        path = args.mtx
        print(f"shard-smoke: reusing {path}", flush=True)
    else:
        directory = args.directory or Path(tempfile.mkdtemp(prefix="shard-smoke-"))
        directory.mkdir(parents=True, exist_ok=True)
        path = stream_random_bipartite_mtx(
            directory / f"smoke-{args.entries}.mtx.gz",
            args.rows,
            args.cols,
            args.entries,
            seed=args.seed,
            chunk_entries=args.chunk_entries,
        )
        print(
            f"shard-smoke: wrote {path} ({path.stat().st_size / 1e6:.1f} MB on disk)",
            flush=True,
        )

    # The generation above allocates its own chunk buffers; trace only the
    # part under test — the CLI's out-of-core ingest + sharded solve.
    tracemalloc.start()
    rc = cli.main(
        [
            "run",
            "--mtx", str(path),
            "--algorithm", args.algorithm,
            "--shards", str(args.shards),
            "--partition", args.partition,
        ]
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    peak_mb = peak / 1e6
    budget = float(args.budget_mb)
    verdict = {
        "entries": args.entries,
        "shards": args.shards,
        "partition": args.partition,
        "peak_mb": round(peak_mb, 1),
        "budget_mb": budget,
        "run_exit_code": rc,
        "ok": rc == 0 and peak_mb <= budget,
    }
    print(f"shard-smoke: {json.dumps(verdict)}", flush=True)
    if rc != 0:
        print(f"shard-smoke: FAIL — repro run exited {rc}", file=sys.stderr)
        return rc
    if peak_mb > budget:
        print(
            f"shard-smoke: FAIL — traced peak {peak_mb:.1f} MB exceeds the "
            f"{budget:.0f} MB budget: peak memory is scaling with total "
            f"edges, not shard size",
            file=sys.stderr,
        )
        return 1
    print(
        f"shard-smoke: OK — peak {peak_mb:.1f} MB within {budget:.0f} MB",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
