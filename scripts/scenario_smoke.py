#!/usr/bin/env python
"""End-to-end scenario gate: the CI ``scenario-smoke`` job.

Replays a packaged capacitated dispatch scenario through the exact path a
user takes — ``repro stream --scenario NAME`` — then independently rebuilds
the post-churn graph and cross-checks the stream's final cardinality
against the Edmonds–Karp max-flow oracle in ``tests/oracle.py``.  The
oracle shares no code with the solvers, the matcher or the CLI, so a bug
anywhere in that stack (solver, incremental repair, update replay,
serialisation) breaks the agreement instead of greening the job.

The replay runs twice, on two different engine backends, and the two JSONL
outputs must be byte-identical: stream rows carry no backend, worker or
wall-clock fields precisely so that this holds.

Example (the CI invocation)::

    python scripts/scenario_smoke.py --scenario ride-hailing --seed 7
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from oracle import max_b_matching_cardinality  # noqa: E402


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", default="ride-hailing",
        help="scenario name from repro.generators.scenarios",
    )
    parser.add_argument("--seed", type=int, default=7, help="scenario seed")
    parser.add_argument(
        "--batch-size", type=int, default=40,
        help="updates applied per stream batch",
    )
    parser.add_argument(
        "--backends", nargs=2, default=("inline", "thread"),
        metavar=("A", "B"),
        help="the two engine backends whose replays must agree byte for byte",
    )
    return parser.parse_args(argv)


def _replay(scenario: str, seed: int, batch_size: int, backend: str) -> str:
    from repro import cli

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = cli.main(
            [
                "stream",
                "--scenario", scenario,
                "--seed", str(seed),
                "--batch-size", str(batch_size),
                "--backend", backend,
            ]
        )
    if rc != 0:
        print(f"scenario-smoke: FAIL — stream exited {rc} on {backend}",
              file=sys.stderr)
        raise SystemExit(rc or 1)
    return out.getvalue()


def _final_snapshot(scenario: str, seed: int):
    """The post-churn graph, rebuilt independently of the stream run."""
    from repro.dynamic import DynamicBipartiteGraph
    from repro.generators import generate_scenario

    recipe = generate_scenario(scenario, seed=seed)
    dyn = DynamicBipartiteGraph(recipe.graph)
    for update in recipe.updates:
        dyn.apply(update)
    return recipe, dyn.snapshot()


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    first, second = args.backends

    output = _replay(args.scenario, args.seed, args.batch_size, first)
    replayed = _replay(args.scenario, args.seed, args.batch_size, second)
    if replayed != output:
        print(
            f"scenario-smoke: FAIL — {first} and {second} replays of "
            f"{args.scenario!r} (seed {args.seed}) are not byte-identical",
            file=sys.stderr,
        )
        return 1

    events = [json.loads(line) for line in output.splitlines() if line]
    summary = events[-1]
    recipe, snapshot = _final_snapshot(args.scenario, args.seed)
    reference = max_b_matching_cardinality(snapshot)

    verdict = {
        "scenario": args.scenario,
        "seed": args.seed,
        "updates": summary.get("updates"),
        "cardinality": summary.get("cardinality"),
        "oracle_cardinality": reference,
        "assignment_rate": summary.get("assignment_rate"),
        "slo": summary.get("slo"),
        "slo_met": summary.get("slo_met"),
        "backends": [first, second],
    }
    print(f"scenario-smoke: {json.dumps(verdict)}", flush=True)

    if summary.get("type") != "summary" or summary.get("updates") != len(recipe.updates):
        print("scenario-smoke: FAIL — malformed or truncated replay", file=sys.stderr)
        return 1
    if summary.get("cardinality") != reference:
        print(
            f"scenario-smoke: FAIL — stream finished at cardinality "
            f"{summary.get('cardinality')} but the flow oracle says the "
            f"maximum b-matching of the post-churn graph is {reference}",
            file=sys.stderr,
        )
        return 1
    if summary.get("slo_met") is not True:
        print(
            f"scenario-smoke: FAIL — final assignment rate "
            f"{summary.get('assignment_rate')} misses the "
            f"{summary.get('slo')} SLO",
            file=sys.stderr,
        )
        return 1
    print(
        f"scenario-smoke: OK — {summary['updates']} updates replayed, "
        f"cardinality {reference} oracle-confirmed, SLO met",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
